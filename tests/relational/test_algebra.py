"""Relational algebra: unit tests plus property-based algebraic laws."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError, VocabularyError
from repro.relational.algebra import (
    difference,
    intersection,
    join_all,
    natural_join,
    product,
    project,
    rename,
    select,
    semijoin,
    union,
)
from repro.relational.relation import Relation


def rel(attrs, rows):
    return Relation(attrs, rows)


class TestProject:
    def test_basic(self):
        r = rel(("x", "y"), [(1, 2), (1, 3)])
        assert project(r, ("x",)).tuples == frozenset({(1,)})

    def test_reorders_columns(self):
        r = rel(("x", "y"), [(1, 2)])
        assert project(r, ("y", "x")).tuples == frozenset({(2, 1)})

    def test_unknown_attribute_raises(self):
        with pytest.raises(VocabularyError):
            project(rel(("x",), []), ("nope",))

    def test_project_to_nothing_gives_unit_or_empty(self):
        assert project(rel(("x",), [(1,)]), ()) == Relation.unit()
        assert project(rel(("x",), []), ()) == Relation.empty(())


class TestSelect:
    def test_predicate_over_mapping(self):
        r = rel(("x", "y"), [(1, 2), (3, 1)])
        out = select(r, lambda row: row["x"] < row["y"])
        assert out.tuples == frozenset({(1, 2)})

    def test_keeps_scheme(self):
        r = rel(("x",), [(1,)])
        assert select(r, lambda _: False).attributes == ("x",)


class TestRename:
    def test_basic(self):
        r = rel(("x", "y"), [(1, 2)])
        out = rename(r, {"x": "a"})
        assert out.attributes == ("a", "y")
        assert out.tuples == r.tuples

    def test_collision_raises(self):
        with pytest.raises(SchemaError):
            rename(rel(("x", "y"), []), {"x": "y"})


class TestNaturalJoin:
    def test_shared_attribute(self):
        r = rel(("x", "y"), [(1, 2), (2, 3)])
        s = rel(("y", "z"), [(2, 10), (9, 11)])
        out = natural_join(r, s)
        assert out.attributes == ("x", "y", "z")
        assert out.tuples == frozenset({(1, 2, 10)})

    def test_disjoint_is_product(self):
        r = rel(("x",), [(1,), (2,)])
        s = rel(("y",), [(3,)])
        assert len(natural_join(r, s)) == 2

    def test_identical_schemes_is_intersection(self):
        r = rel(("x",), [(1,), (2,)])
        s = rel(("x",), [(2,), (3,)])
        assert natural_join(r, s).tuples == frozenset({(2,)})

    def test_unit_is_identity(self):
        r = rel(("x", "y"), [(1, 2)])
        assert natural_join(Relation.unit(), r) == r
        assert natural_join(r, Relation.unit()) == r

    def test_join_with_empty_is_empty(self):
        r = rel(("x",), [(1,)])
        assert not natural_join(r, Relation.empty(("x",)))


class TestJoinAll:
    def test_empty_collection_is_unit(self):
        assert join_all([]) == Relation.unit()

    def test_three_way(self):
        out = join_all(
            [
                rel(("a", "b"), [(1, 2)]),
                rel(("b", "c"), [(2, 3)]),
                rel(("c", "d"), [(3, 4)]),
            ]
        )
        assert out.tuples == frozenset({(1, 2, 3, 4)}) or len(out) == 1

    def test_early_exit_preserves_all_attributes(self):
        out = join_all(
            [
                rel(("a",), []),
                rel(("b", "c"), [(1, 2)]),
            ]
        )
        assert not out
        assert set(out.attributes) == {"a", "b", "c"}


class TestSemijoin:
    def test_basic(self):
        r = rel(("x", "y"), [(1, 2), (5, 9)])
        s = rel(("y", "z"), [(2, 0)])
        assert semijoin(r, s).tuples == frozenset({(1, 2)})

    def test_keeps_left_scheme(self):
        r = rel(("x", "y"), [(1, 2)])
        s = rel(("y", "z"), [(2, 0)])
        assert semijoin(r, s).attributes == ("x", "y")

    def test_no_shared_attributes_with_nonempty_right_keeps_all(self):
        r = rel(("x",), [(1,)])
        s = rel(("z",), [(9,)])
        assert semijoin(r, s) == r

    def test_no_shared_attributes_with_empty_right_empties(self):
        r = rel(("x",), [(1,)])
        s = rel(("z",), [])
        assert not semijoin(r, s)


class TestSetOperations:
    def test_union(self):
        a = rel(("x",), [(1,)])
        b = rel(("x",), [(2,)])
        assert union(a, b).tuples == frozenset({(1,), (2,)})

    def test_intersection(self):
        a = rel(("x",), [(1,), (2,)])
        b = rel(("x",), [(2,)])
        assert intersection(a, b).tuples == frozenset({(2,)})

    def test_difference(self):
        a = rel(("x",), [(1,), (2,)])
        b = rel(("x",), [(2,)])
        assert difference(a, b).tuples == frozenset({(1,)})

    def test_scheme_mismatch_raises(self):
        with pytest.raises(SchemaError):
            union(rel(("x",), []), rel(("y",), []))

    def test_product_requires_disjoint(self):
        with pytest.raises(SchemaError):
            product(rel(("x",), []), rel(("x",), []))

    def test_product_sizes_multiply(self):
        a = rel(("x",), [(1,), (2,)])
        b = rel(("y",), [(5,), (6,), (7,)])
        assert len(product(a, b)) == 6


# -- property-based algebraic laws -------------------------------------------

pair_rows = st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10)


@st.composite
def xy_relation(draw):
    return Relation(("x", "y"), draw(pair_rows))


@st.composite
def yz_relation(draw):
    return Relation(("y", "z"), draw(pair_rows))


@given(xy_relation(), yz_relation())
def test_join_commutes_up_to_column_order(r, s):
    left = natural_join(r, s)
    right = natural_join(s, r)
    assert project(right, left.attributes) == left


@given(xy_relation(), yz_relation(), st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10))
def test_join_is_associative(r, s, zw_rows):
    t = Relation(("z", "w"), zw_rows)
    a = natural_join(natural_join(r, s), t)
    b = natural_join(r, natural_join(s, t))
    assert a == project(b, a.attributes)


@given(xy_relation(), yz_relation())
def test_semijoin_equals_join_then_project(r, s):
    assert semijoin(r, s) == project(natural_join(r, s), r.attributes)


@given(xy_relation())
def test_join_is_idempotent(r):
    assert natural_join(r, r) == r


@given(xy_relation(), xy_relation())
def test_union_and_intersection_laws(a, b):
    assert union(a, b) == union(b, a)
    assert intersection(a, b) == intersection(b, a)
    assert difference(a, b).tuples == a.tuples - b.tuples


@given(xy_relation())
def test_project_idempotent(r):
    once = project(r, ("x",))
    assert project(once, ("x",)) == once


class TestDivision:
    def test_classic_example(self):
        from repro.relational.algebra import division

        enrolled = rel(
            ("student", "course"),
            [("ana", "db"), ("ana", "ai"), ("bo", "db"), ("cy", "ai"), ("cy", "db")],
        )
        required = rel(("course",), [("db",), ("ai",)])
        out = division(enrolled, required)
        assert out.tuples == frozenset({("ana",), ("cy",)})

    def test_empty_divisor_returns_all_candidates(self):
        from repro.relational.algebra import division

        r = rel(("x", "y"), [(1, 2), (3, 4)])
        out = division(r, Relation.empty(("y",)))
        assert out.tuples == frozenset({(1,), (3,)})

    def test_scheme_must_be_proper_subset(self):
        from repro.relational.algebra import division

        r = rel(("x", "y"), [(1, 2)])
        with pytest.raises(SchemaError):
            division(r, rel(("x", "y"), []))
        with pytest.raises(SchemaError):
            division(r, rel(("z",), []))


@given(pair_rows, st.lists(st.tuples(st.integers(0, 3)), max_size=4))
def test_division_is_universal_quantification(rows, divisor_rows):
    from repro.relational.algebra import division

    left = Relation(("x", "y"), rows)
    right = Relation(("y",), [(r[0],) for r in divisor_rows])
    out = division(left, right)
    xs = {t[0] for t in left}
    expected = {
        (x,)
        for x in xs
        if all((x, y[0]) in left.tuples for y in right)
    }
    assert out.tuples == frozenset(expected)
