"""Adversarial instances for the leapfrog triejoin: the query families where
every pairwise plan provably blows up.

Each family is checked two ways:

* **Correctness** — the wcoj result equals the nested-loop scan oracle
  (and, through the CQ layer, every other execution) exactly.
* **The AGM gap** — on the quadratic star graph, the EvalStats trace shows
  the pairwise executions materializing Θ(n²) intermediate rows for a
  triangle output of constant size, while wcoj materializes only the
  output.  This is the Atserias–Grohe–Marx separation as a unit test; the
  E5-cyclic benchmark family measures its asymptotics.

The families: the triangle query on a star graph (every binary join is
quadratic regardless of order), k-cliques for k = 3..5, self-joins with
repeated predicates and repeated variables, and the Loomis–Whitney queries
LW(3)/LW(4) (each atom omits one variable — fractional edge cover ½ each).
"""

from itertools import combinations

import pytest

from repro.cq.evaluate import evaluate, evaluate_boolean
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.relational.algebra import join_all
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats
from repro.relational.wcoj import leapfrog_join
from repro.generators.graphs import random_digraph


def _canon(rel):
    return {frozenset(zip(rel.attributes, t)) for t in rel.tuples}


def star_edges(n):
    """The symmetric star on hub 0 plus one embedded triangle (1,2),(2,3),(3,1).

    Any binary join of two copies of ``E`` equates one variable and leaves
    the other two free, so it contains all Θ(n²) leaf pairs through the
    hub — no pairwise order avoids the blow-up — while the triangle output
    is a constant 24 rows independent of ``n``: the 4 undirected triangles
    ({1,2,3} and the hub with each of its edges) × 6 orientations each.
    """
    edges = set()
    for i in range(1, n + 1):
        edges.add((0, i))
        edges.add((i, 0))
    for u, v in ((1, 2), (2, 3), (3, 1)):
        edges.add((u, v))
        edges.add((v, u))
    return edges


def triangle_relations(edges):
    return [
        Relation(("x", "y"), edges),
        Relation(("y", "z"), edges),
        Relation(("z", "x"), edges),
    ]


def triangle_query():
    x, y, z = Var("x"), Var("y"), Var("z")
    return ConjunctiveQuery(
        "Q", (x, y, z), [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))]
    )


def test_triangle_on_star_graph_all_executions_agree():
    edges = star_edges(12)
    rels = triangle_relations(edges)
    oracle = join_all(rels, strategy="textbook+scan")
    assert _canon(leapfrog_join(rels)) == _canon(oracle)
    # 4 undirected triangles × 6 orientations, independent of the star size.
    assert len(oracle) == 24


def test_triangle_on_star_graph_agm_gap():
    """The pairwise plans materialize the quadratic wedge set; wcoj
    materializes nothing but the 6-row output."""
    n = 20
    rels = triangle_relations(star_edges(n))

    with collect_stats() as pairwise:
        out = join_all(rels, strategy="interned")
    with collect_stats() as wcoj:
        out_wcoj = leapfrog_join(rels)
    assert out_wcoj.tuples == {
        tuple(t[out.attributes.index(a)] for a in out_wcoj.attributes)
        for t in out.tuples
    }
    # Every leaf pair appears as a hub wedge in the first intermediate.
    assert pairwise.max_intermediate >= n * n
    # wcoj's only "intermediate" is the output relation itself.
    assert wcoj.max_intermediate == len(out_wcoj) == 24
    assert wcoj.trie_builds == 3
    assert wcoj.seeks > 0 and wcoj.leapfrog_rounds > 0


def test_triangle_through_cq_layer_all_strategies():
    edges = star_edges(8)
    db_relations = {"E": edges}
    from repro.relational.structure import Structure

    database = Structure({"E": 2}, range(9), db_relations)
    query = triangle_query()
    oracle = evaluate(query, database, strategy="textbook+scan")
    with collect_stats() as stats:
        for strategy in ("wcoj", "auto", "greedy+wcoj", "interned", "indexed"):
            assert _canon(evaluate(query, database, strategy=strategy)) == _canon(oracle)
        assert evaluate_boolean(query, database, strategy="auto") is True
    # strategy="auto" ran twice (evaluate + evaluate_boolean); both times the
    # cyclic triangle body routed to wcoj, and the decision was recorded.
    assert [d["route"] for d in stats.routing_decisions] == ["wcoj", "wcoj"]
    assert all(
        d["query"] == "Q" and not d["acyclic"] and d["signal"] == "gyo-acyclicity"
        for d in stats.routing_decisions
    )


def test_auto_routing_records_acyclic_decisions():
    """Acyclic bodies under strategy="auto" route to Yannakakis — and the
    decision (route, acyclicity, width signal) lands in EvalStats."""
    from repro.generators.queries import chain_query
    from repro.relational.structure import Structure

    database = Structure({"E": 2}, range(9), {"E": star_edges(8)})
    with collect_stats() as stats:
        evaluate(chain_query(4), database, strategy="auto")
        assert evaluate_boolean(chain_query(3), database, strategy="auto") is True
    assert [d["route"] for d in stats.routing_decisions] == [
        "yannakakis", "yannakakis",
    ]
    assert all(
        d["acyclic"] and d["signal"] == "gyo-acyclicity"
        for d in stats.routing_decisions
    )
    # The record round-trips through as_dict/merge like every other counter.
    merged = type(stats)()
    merged.merge(stats)
    assert merged.as_dict()["routing_decisions"] == stats.as_dict()["routing_decisions"]


@pytest.mark.parametrize("k", [3, 4, 5])
def test_k_clique_matches_scan_oracle(k):
    """K_k enumeration: one binary atom per unordered variable pair."""
    database = random_digraph(9, 0.5, seed=k)
    # Symmetrize so cliques are undirected.
    edges = set(database.relation("E")) | {
        (b, a) for a, b in database.relation("E")
    }
    names = [f"v{i}" for i in range(k)]
    rels = [
        Relation((names[i], names[j]), edges) for i, j in combinations(range(k), 2)
    ]
    oracle = join_all(rels, strategy="textbook+scan")
    got = leapfrog_join(rels)
    assert _canon(got) == _canon(oracle)
    # Sanity: every output row is a genuine clique.
    for row in got.tuples:
        binding = dict(zip(got.attributes, row))
        for i, j in combinations(range(k), 2):
            assert (binding[names[i]], binding[names[j]]) in edges


@pytest.mark.parametrize("seed", range(5))
def test_self_join_repeated_predicates(seed):
    """Bodies reusing one predicate, including repeated variables (E(x,x))
    and back-and-forth atoms (E(x,y), E(y,x))."""
    database = random_digraph(7, 0.45, seed=seed, loops=True)
    x, y, z = Var("x"), Var("y"), Var("z")
    queries = [
        ConjunctiveQuery("Q", (x, y), [Atom("E", (x, y)), Atom("E", (y, x))]),
        ConjunctiveQuery("Q", (x,), [Atom("E", (x, x))]),
        ConjunctiveQuery(
            "Q", (x, y, z),
            [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x)),
             Atom("E", (x, x))],
        ),
        ConjunctiveQuery(
            "Q", (x, y), [Atom("E", (x, y)), Atom("E", (y, x)), Atom("E", (x, x))]
        ),
    ]
    for query in queries:
        oracle = evaluate(query, database, strategy="textbook+scan")
        for strategy in ("wcoj", "auto", "smallest+wcoj"):
            with collect_stats() as stats:
                got = evaluate(query, database, strategy=strategy)
            assert _canon(got) == _canon(oracle), f"{query!r} under {strategy}"
            if strategy == "auto":
                (decision,) = stats.routing_decisions
                assert decision["route"] == (
                    "yannakakis" if decision["acyclic"] else "wcoj"
                )


def _lw_relations(n_vars, rows):
    """Loomis–Whitney LW(n): one atom per (n-1)-subset of the variables.

    Each atom omits exactly one variable, so assigning every atom weight
    1/(n-1) is a fractional edge cover: AGM output bound N^{n/(n-1)},
    strictly below any pairwise intermediate's worst case.
    """
    names = [f"v{i}" for i in range(n_vars)]
    rels = []
    for omit in range(n_vars):
        attrs = tuple(names[i] for i in range(n_vars) if i != omit)
        rels.append(Relation(attrs, {row[: n_vars - 1] for row in rows}))
    return rels


@pytest.mark.parametrize("n_vars", [3, 4])
def test_loomis_whitney_matches_scan_oracle(n_vars):
    rows = {
        tuple((seed * 7 + j * 3) % 5 for j in range(n_vars))
        for seed in range(40)
    }
    rels = _lw_relations(n_vars, rows)
    oracle = join_all(rels, strategy="textbook+scan")
    assert _canon(leapfrog_join(rels)) == _canon(oracle)


def test_loomis_whitney_never_materializes_intermediates():
    rels = _lw_relations(3, {(i % 4, (i * i) % 4, (i + 1) % 4) for i in range(30)})
    with collect_stats() as stats:
        out = leapfrog_join(rels)
    assert stats.max_intermediate == len(out)
    assert stats.intermediate_sizes == [len(out)]
