"""Structures, vocabularies, and the σ₁+σ₂ sum encoding."""

import pytest

from repro.errors import ArityError, DomainError, VocabularyError
from repro.relational.structure import (
    SUM_DOMAIN_LEFT,
    SUM_DOMAIN_RIGHT,
    Structure,
    Vocabulary,
    sum_structure,
)


class TestVocabulary:
    def test_arity_lookup(self):
        v = Vocabulary({"E": 2, "P": 1})
        assert v.arity("E") == 2
        assert v.max_arity() == 2
        assert len(v) == 2
        assert "E" in v

    def test_unknown_symbol(self):
        with pytest.raises(VocabularyError):
            Vocabulary({"E": 2}).arity("F")

    def test_invalid_names_and_arities(self):
        with pytest.raises(VocabularyError):
            Vocabulary({"": 1})
        with pytest.raises(VocabularyError):
            Vocabulary({"E": -1})

    def test_equality_and_hash(self):
        assert Vocabulary({"E": 2}) == Vocabulary({"E": 2})
        assert hash(Vocabulary({"E": 2})) == hash(Vocabulary({"E": 2}))
        assert Vocabulary({"E": 2}) != Vocabulary({"E": 3})

    def test_empty_vocabulary_max_arity(self):
        assert Vocabulary({}).max_arity() == 0

    def test_iteration_sorted(self):
        v = Vocabulary({"Z": 1, "A": 1})
        assert list(v) == ["A", "Z"]


class TestStructure:
    def test_basic(self):
        s = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        assert s.relation("E") == frozenset({(0, 1)})
        assert s.domain == frozenset({0, 1})

    def test_plain_dict_vocabulary_accepted(self):
        s = Structure({"E": 2}, [0], {})
        assert s.relation("E") == frozenset()

    def test_missing_relations_are_empty(self):
        s = Structure({"E": 2, "P": 1}, [0], {"E": []})
        assert s.relation("P") == frozenset()

    def test_rejects_unknown_relation(self):
        with pytest.raises(VocabularyError):
            Structure({"E": 2}, [0], {"F": []})

    def test_rejects_wrong_arity(self):
        with pytest.raises(ArityError):
            Structure({"E": 2}, [0], {"E": [(0,)]})

    def test_rejects_out_of_domain_value(self):
        with pytest.raises(DomainError):
            Structure({"E": 2}, [0], {"E": [(0, 7)]})

    def test_facts_sorted_iteration(self):
        s = Structure({"E": 2, "P": 1}, [0, 1], {"E": [(0, 1)], "P": [(1,)]})
        assert list(s.facts()) == [("E", (0, 1)), ("P", (1,))]

    def test_sizes(self):
        s = Structure({"E": 2}, [0, 1, 2], {"E": [(0, 1), (1, 2)]})
        assert s.total_tuples() == 2
        assert s.size() == 5
        assert s.active_domain() == frozenset({0, 1, 2})

    def test_restrict(self):
        s = Structure({"E": 2}, [0, 1, 2], {"E": [(0, 1), (1, 2)]})
        sub = s.restrict([0, 1])
        assert sub.domain == frozenset({0, 1})
        assert sub.relation("E") == frozenset({(0, 1)})

    def test_with_relation_adds_symbol(self):
        s = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        t = s.with_relation("P", 1, [(0,)])
        assert t.relation("P") == frozenset({(0,)})
        assert t.relation("E") == s.relation("E")

    def test_with_relation_arity_conflict(self):
        s = Structure({"E": 2}, [0, 1], {})
        with pytest.raises(VocabularyError):
            s.with_relation("E", 3, [])

    def test_equality_and_hash(self):
        s1 = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        s2 = Structure({"E": 2}, {1, 0}, {"E": {(0, 1)}})
        assert s1 == s2
        assert hash(s1) == hash(s2)


class TestSumStructure:
    def setup_method(self):
        self.a = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        self.b = Structure({"E": 2}, ["x"], {"E": [("x", "x")]})

    def test_domain_is_tagged_disjoint_union(self):
        s = sum_structure(self.a, self.b)
        assert (0, 0) in s.domain and (0, 1) in s.domain and (1, "x") in s.domain
        assert len(s.domain) == 3

    def test_marker_predicates(self):
        s = sum_structure(self.a, self.b)
        assert s.relation(SUM_DOMAIN_LEFT) == frozenset({((0, 0),), ((0, 1),)})
        assert s.relation(SUM_DOMAIN_RIGHT) == frozenset({((1, "x"),)})

    def test_relation_copies(self):
        s = sum_structure(self.a, self.b)
        assert s.relation("E_1") == frozenset({((0, 0), (0, 1))})
        assert s.relation("E_2") == frozenset({((1, "x"), (1, "x"))})

    def test_vocabulary_mismatch_raises(self):
        other = Structure({"F": 1}, [0], {})
        with pytest.raises(VocabularyError):
            sum_structure(self.a, other)


class TestDerivedMemo:
    """The identity-scoped derived-value memo: cached per object, excluded
    from equality/hash/pickling."""

    def make(self):
        return Structure({"E": 2}, [1, 2], {"E": [(1, 2)]})

    def test_build_runs_once_per_key(self):
        s = self.make()
        calls = []
        assert s.derived("k", lambda: calls.append(1) or "value") == "value"
        assert s.derived("k", lambda: calls.append(1) or "other") == "value"
        assert len(calls) == 1
        assert s.derived("k2", lambda: "second") == "second"

    def test_memo_is_identity_state_not_content(self):
        a, b = self.make(), self.make()
        a.derived("k", lambda: "cached")
        assert a == b and hash(a) == hash(b)
        assert b.derived("k", lambda: "fresh") == "fresh"

    def test_pickle_drops_the_memo_and_keeps_the_facts(self):
        import pickle

        s = self.make()
        s.derived("k", lambda: object())  # unpicklable value must not travel
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s and hash(clone) == hash(s)
        assert clone.derived("k", lambda: "rebuilt") == "rebuilt"

    def test_atom_relations_are_shared_across_queries(self):
        from repro.cq.evaluate import atom_relation
        from repro.cq.parser import parse_atom

        s = self.make()
        r1 = atom_relation(parse_atom("E(X, Y)"), s)
        r2 = atom_relation(parse_atom("E(X, Y)"), s)
        assert r1 is r2
        other = atom_relation(parse_atom("E(A, B)"), s)
        assert other is not r1 and other.attributes == ("A", "B")
