"""Homomorphism search, with coloring instances and a brute-force oracle."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VocabularyError
from repro.relational.homomorphism import (
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    is_homomorphism,
    is_partial_homomorphism,
)
from repro.relational.structure import Structure


def digraph(n, edges):
    return Structure({"E": 2}, range(n), {"E": edges})


def clique(k):
    return digraph(k, [(i, j) for i in range(k) for j in range(k) if i != j])


def directed_cycle(n):
    return digraph(n, [(i, (i + 1) % n) for i in range(n)])


class TestIsHomomorphism:
    def test_valid(self):
        a = digraph(2, [(0, 1)])
        b = digraph(2, [(0, 1)])
        assert is_homomorphism({0: 0, 1: 1}, a, b)

    def test_tuple_not_preserved(self):
        a = digraph(2, [(0, 1)])
        b = digraph(2, [(1, 0)])
        assert not is_homomorphism({0: 0, 1: 1}, a, b)

    def test_must_be_total(self):
        a = digraph(2, [])
        b = digraph(1, [])
        assert not is_homomorphism({0: 0}, a, b)

    def test_must_land_in_codomain(self):
        a = digraph(1, [])
        b = digraph(1, [])
        assert not is_homomorphism({0: 99}, a, b)

    def test_vocabulary_mismatch(self):
        a = digraph(1, [])
        b = Structure({"F": 1}, [0], {})
        with pytest.raises(VocabularyError):
            is_homomorphism({0: 0}, a, b)


class TestPartialHomomorphism:
    def test_checks_only_covered_tuples(self):
        a = digraph(3, [(0, 1), (1, 2)])
        b = digraph(2, [(0, 1)])
        # Mapping covering only 0 ignores both edges.
        assert is_partial_homomorphism({0: 0}, a, b)
        # Covering 0, 1 checks edge (0,1) only.
        assert is_partial_homomorphism({0: 0, 1: 1}, a, b)
        assert not is_partial_homomorphism({0: 1, 1: 0}, a, b)

    def test_empty_mapping_always_partial(self):
        assert is_partial_homomorphism({}, digraph(2, [(0, 1)]), digraph(1, []))


class TestSearch:
    def test_triangle_into_k3(self):
        assert homomorphism_exists(clique(3), clique(3))

    def test_triangle_not_into_k2(self):
        assert not homomorphism_exists(clique(3), clique(2))

    def test_found_mapping_is_valid(self):
        a = directed_cycle(4)
        b = clique(3)
        h = find_homomorphism(a, b)
        assert h is not None
        assert is_homomorphism(h, a, b)

    def test_count_k2_colorings_of_even_cycle(self):
        # Hom(C4 directed, K2-symmetric) = two proper 2-colorings.
        b = digraph(2, [(0, 1), (1, 0)])
        assert count_homomorphisms(directed_cycle(4), b) == 2

    def test_count_homs_to_loop(self):
        loop = digraph(1, [(0, 0)])
        assert count_homomorphisms(directed_cycle(5), loop) == 1

    def test_all_homomorphisms_distinct(self):
        homs = list(all_homomorphisms(digraph(2, []), digraph(2, [])))
        assert len(homs) == 4
        assert len({tuple(sorted(h.items())) for h in homs}) == 4

    def test_empty_target_with_nonempty_source(self):
        assert not homomorphism_exists(digraph(1, []), digraph(0, []))

    def test_empty_source(self):
        assert homomorphism_exists(digraph(0, []), digraph(0, []))
        assert find_homomorphism(digraph(0, []), digraph(1, [])) == {}


def brute_force_exists(a, b):
    a_elems = sorted(a.domain)
    for image in product(sorted(b.domain), repeat=len(a_elems)):
        if is_homomorphism(dict(zip(a_elems, image)), a, b):
            return True
    return False


edge_lists = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8
)


@settings(max_examples=60, deadline=None)
@given(edge_lists, edge_lists)
def test_search_matches_brute_force(a_edges, b_edges):
    a = digraph(4, a_edges)
    b = digraph(4, b_edges)
    assert homomorphism_exists(a, b) == brute_force_exists(a, b)


@settings(max_examples=40, deadline=None)
@given(edge_lists, edge_lists)
def test_every_enumerated_hom_is_valid(a_edges, b_edges):
    a = digraph(3, [(u % 3, v % 3) for u, v in a_edges])
    b = digraph(3, [(u % 3, v % 3) for u, v in b_edges])
    for h in all_homomorphisms(a, b):
        assert is_homomorphism(h, a, b)


@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_identity_is_always_a_homomorphism(edges):
    a = digraph(4, edges)
    assert is_homomorphism({v: v for v in a.domain}, a, a)


@settings(max_examples=30, deadline=None)
@given(edge_lists, edge_lists)
def test_homomorphisms_compose(a_edges, b_edges):
    a = digraph(3, [(u % 3, v % 3) for u, v in a_edges])
    b = digraph(3, [(u % 3, v % 3) for u, v in b_edges])
    h = find_homomorphism(a, b)
    g = find_homomorphism(b, a)
    if h is not None and g is not None:
        composed = {x: g[h[x]] for x in a.domain}
        assert is_homomorphism(composed, a, a)
