"""Adversarial regressions for the columnar layer: mixed-strategy pipelines
and the numpy-absent fallback.

Two families of attack:

* **mixed pipelines** — one query interleaving row and columnar operators
  over the *same* relation objects.  Memoized structures (hash indexes,
  code indexes, column stores) are shared across the execution boundary,
  and each store/index carries its own relation-local codec, so every
  batched probe must translate between code spaces instead of assuming
  they align.  Probe values unknown to the build side (no code at all) and
  relations whose codecs disagree about the same value's code are the
  specific traps.

* **numpy masking** — the stdlib fallback is not a separate implementation
  to trust but a differential peer: with ``numpy`` masked out of
  ``sys.modules`` every kernel must produce the identical relation, and
  the propagation engine must degrade to the interned bitset engine
  (same fixpoints by construction, not by luck).
"""

import builtins
import sys

import pytest

from repro.consistency.propagation import (
    ColumnarEngine,
    InternedEngine,
    PropagationStats,
    _BitsetConstraint,
    _ColumnarConstraint,
    make_engine,
)
from repro.csp.instance import Constraint, CSPInstance
from repro.relational.algebra import join_all, natural_join, select, semijoin
from repro.relational.columnar import (
    batched_natural_join,
    batched_semijoin,
    column_store,
    mask_select,
    numpy_backend,
    project_distinct,
    reset_numpy_backend,
)
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats


def _rel(attrs, rows):
    return Relation(attrs, rows)


# -- mixed-strategy pipelines ------------------------------------------------


class TestMixedPipelines:
    def test_row_join_feeds_columnar_join(self):
        """scan ⋈ → columnar ⋈: the intermediate built by the row path is
        columnized lazily, and the result matches the all-row plan."""
        r = _rel(("a", "b"), [(i, i % 4) for i in range(16)])
        s = _rel(("b", "c"), [(i % 4, chr(97 + i % 3)) for i in range(12)])
        t = _rel(("c", "d"), [(chr(97 + i % 3), i) for i in range(9)])
        oracle = natural_join(natural_join(r, s, execution="scan"), t,
                              execution="scan")
        mid = natural_join(r, s, execution="scan")
        assert natural_join(mid, t, execution="columnar") == oracle
        assert natural_join(mid, t, execution="interned") == oracle

    def test_columnar_join_feeds_row_join(self):
        r = _rel(("a", "b"), [(i, i % 5) for i in range(20)])
        s = _rel(("b", "c"), [(i % 5, i) for i in range(10)])
        t = _rel(("c",), [(i,) for i in range(0, 10, 2)])
        oracle = natural_join(natural_join(r, s, execution="indexed"), t,
                              execution="indexed")
        mid = batched_natural_join(r, s)
        assert natural_join(mid, t, execution="scan") == oracle

    def test_interned_index_reused_by_columnar_probe(self):
        """An interned join memoizes the build side's CodeIndex; a later
        columnar probe against the same relation must reuse it (no rebuild)
        even though the probe side's store codec is a different table."""
        build = _rel(("b", "c"), [(i % 6, i) for i in range(18)])
        left1 = _rel(("a", "b"), [(i, i % 6) for i in range(30)])
        left2 = _rel(("a", "b"), [(i, (i + 1) % 9) for i in range(25)])
        oracle = natural_join(left2, build, execution="scan")
        natural_join(left1, build, execution="interned")  # memoizes the index
        assert build.has_code_index(("b",))
        with collect_stats() as stats:
            assert batched_natural_join(left2, build) == oracle
        assert stats.index_builds == 0  # shared across the execution boundary
        assert stats.batch_probes == len(left2)

    def test_probe_values_unknown_to_build_codec(self):
        """Codec disagreement across the boundary: the probe side's store
        interns values the build side has never seen (including values whose
        local codes exceed the build codec's base), so the translation LUT
        must map them to misses, never alias them onto valid codes."""
        build = _rel(("k", "v"), [("a", 1), ("b", 2)])
        probe = _rel(
            ("k", "x"),
            [("a", 10), ("b", 11), ("z", 12), ((1, 2), 13), ("zz", 14)],
        )
        assert batched_semijoin(probe, build) == semijoin(probe, build)
        assert batched_natural_join(probe, build) == natural_join(probe, build)

    def test_disjoint_and_identical_schemes(self):
        disjoint_l = _rel(("a",), [(1,), (2,)])
        disjoint_r = _rel(("b",), [(3,), (4,)])
        assert batched_natural_join(disjoint_l, disjoint_r) == natural_join(
            disjoint_l, disjoint_r
        )
        same = _rel(("a", "b"), [(1, 2), (3, 4)])
        other = _rel(("a", "b"), [(1, 2), (5, 6)])
        assert batched_natural_join(same, other) == natural_join(same, other)
        assert batched_semijoin(same, other) == semijoin(same, other)

    def test_join_all_mixes_warm_and_cold_operands(self):
        """One join_all where some operands carry pre-built row indexes and
        stores from earlier queries and others are cold."""
        r = _rel(("a", "b"), [(i, i % 4) for i in range(40)])
        s = _rel(("b", "c"), [(i % 4, i % 7) for i in range(35)])
        t = _rel(("c", "d"), [(i % 7, i) for i in range(21)])
        r.index_on(("b",))         # row-path hash index
        column_store(s)            # columnar store
        s.code_index_on(("b",))    # interned code index
        expected = join_all([r, s, t])
        assert join_all([r, s, t], execution="columnar") == expected
        assert join_all([r, s, t], execution="interned") == expected


# -- numpy-absent fallback ---------------------------------------------------


@pytest.fixture
def no_numpy(monkeypatch):
    """Mask numpy out of the import machinery and drop the cached detection;
    restore both on exit."""
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy masked for the fallback wall")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)
    for mod in [m for m in sys.modules if m == "numpy" or m.startswith("numpy.")]:
        monkeypatch.delitem(sys.modules, mod)
    reset_numpy_backend()
    yield
    monkeypatch.undo()
    reset_numpy_backend()


@pytest.mark.usefixtures("no_numpy")
class TestNumpyAbsentFallback:
    def test_backend_reports_absent(self):
        assert numpy_backend() is None

    def test_kernels_match_row_oracles_without_numpy(self):
        left = _rel(("a", "b"), [(i, i % 6) for i in range(30)])
        right = _rel(("b", "c"), [(i % 6, chr(97 + i % 4)) for i in range(20)])
        assert batched_natural_join(left, right) == natural_join(
            left, right, execution="indexed"
        )
        assert batched_semijoin(left, right) == semijoin(left, right)
        assert mask_select(left, {"b": lambda v: v % 2 == 0}) == select(
            left, lambda row: row["b"] % 2 == 0
        )
        assert project_distinct(left, ("b",)) == Relation(
            ("b",), [(i,) for i in range(6)]
        )
        # The strategy knob stays legal: join_all reruns the binary fold.
        assert join_all([left, right], execution="columnar") == join_all(
            [left, right]
        )

    def test_store_has_no_np_columns_but_round_trips(self):
        rel = _rel(("a", "b"), [(1, "x"), (2, "y")])
        store = column_store(rel)
        assert store.np_columns() is None
        assert store.to_relation() == rel

    def test_columnar_engine_degrades_to_interned(self):
        """Without numpy the ColumnarEngine keeps the inherited bitset
        constraints — it *is* the interned engine, same fixpoint by
        construction."""
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1, 2],
            [
                Constraint(("x", "y"), {(0, 1), (1, 2), (2, 0)}),
                Constraint(("y", "z"), {(1, 2), (2, 0)}),
                Constraint(("z",), [(2,)]),
            ],
        )
        engine = make_engine(inst, "columnar")
        assert isinstance(engine, ColumnarEngine)
        assert all(isinstance(c, _BitsetConstraint) for c in engine.constraints)
        domains = engine.fresh_domains()
        assert engine.propagate(domains, engine.full_worklist(), PropagationStats())
        interned = InternedEngine(inst)
        expected = interned.fresh_domains()
        interned.propagate(expected, interned.full_worklist(), PropagationStats())
        assert domains == expected


def test_columnar_engine_uses_vectorized_constraints_with_numpy():
    """The counterpart pin: with numpy present the constraints really are
    the vectorized kind (so the masking test above is exercising a genuine
    degradation, not the only path)."""
    if numpy_backend() is None:
        pytest.skip("numpy not available")
    inst = CSPInstance(
        ["x", "y"], [0, 1], [Constraint(("x", "y"), {(0, 1), (1, 0)})]
    )
    engine = make_engine(inst, "columnar")
    assert all(isinstance(c, _ColumnarConstraint) for c in engine.constraints)
