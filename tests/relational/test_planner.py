"""Unit tests for the cost-guided join planner."""

import pytest

from repro.errors import SolverError
from repro.relational.planner import (
    STRATEGIES,
    estimate_join,
    order_relations,
    plan_join,
    profile,
)
from repro.relational.relation import Relation


def rel(attrs, rows):
    return Relation(attrs, rows)


class TestProfile:
    def test_exact_counts(self):
        r = rel(("x", "y"), [(1, 1), (1, 2), (2, 2)])
        p = profile(r)
        assert p.cardinality == 3
        assert p.distinct == {"x": 2.0, "y": 2.0}

    def test_empty_relation(self):
        p = profile(Relation.empty(("x",)))
        assert p.cardinality == 0
        assert p.distinct == {"x": 0.0}


class TestEstimate:
    def test_disjoint_schemes_estimate_product(self):
        left = profile(rel(("x",), [(1,), (2,)]))
        right = profile(rel(("y",), [(5,), (6,), (7,)]))
        assert estimate_join(left, right).cardinality == 6

    def test_shared_attribute_divides(self):
        left = profile(rel(("x", "y"), [(i, i % 3) for i in range(6)]))
        right = profile(rel(("y", "z"), [(i % 3, i) for i in range(6)]))
        est = estimate_join(left, right)
        assert est.cardinality == pytest.approx(6 * 6 / 3)
        assert est.attributes == {"x", "y", "z"}

    def test_empty_side_estimates_zero(self):
        left = profile(Relation.empty(("x", "y")))
        right = profile(rel(("y", "z"), [(1, 2)]))
        assert estimate_join(left, right).cardinality == 0


class TestPlans:
    def test_textbook_keeps_given_order(self):
        rels = [rel(("a",), [(i,) for i in range(n)]) for n in (5, 1, 3)]
        plan = plan_join(rels, "textbook")
        assert plan.order == (0, 1, 2)

    def test_smallest_sorts_by_cardinality(self):
        rels = [rel(("a",), [(i,) for i in range(n)]) for n in (5, 1, 3)]
        plan = plan_join(rels, "smallest")
        assert plan.order == (1, 2, 0)

    def test_greedy_starts_with_smallest_relation(self):
        rels = [
            rel(("x", "y"), [(i, i) for i in range(9)]),
            rel(("y", "z"), [(0, 0)]),
            rel(("z", "w"), [(i, i) for i in range(4)]),
        ]
        plan = plan_join(rels, "greedy")
        assert plan.order[0] == 1

    def test_greedy_avoids_cartesian_products(self):
        # A chain R(a,b)–S(b,c)–T(c,d): after R, joining T would be a pure
        # product; greedy must pick the connected S first.
        r = rel(("a", "b"), [(i, i) for i in range(2)])
        s = rel(("b", "c"), [(i, i) for i in range(5)])
        t = rel(("c", "d"), [(i, i) for i in range(5)])
        plan = plan_join([r, s, t], "greedy")
        assert plan.order == (0, 1, 2)

    def test_greedy_prefers_empty_relation_first(self):
        rels = [
            rel(("x", "y"), [(i, i) for i in range(5)]),
            Relation.empty(("y", "z")),
        ]
        plan = plan_join(rels, "greedy")
        assert plan.order[0] == 1
        assert plan.estimated_max_intermediate == 0

    def test_plan_is_a_permutation(self):
        rels = [rel(("a", "b"), [(1, 2)]), rel(("b", "c"), [(2, 3)]),
                rel(("a", "c"), [(1, 3)]), rel(("d",), [(9,)])]
        for strategy in STRATEGIES:
            plan = plan_join(rels, strategy)
            assert sorted(plan.order) == [0, 1, 2, 3]
            assert len(plan.estimated_sizes) == len(rels) - 1

    def test_empty_input(self):
        for strategy in STRATEGIES:
            plan = plan_join([], strategy)
            assert plan.order == ()
            assert plan.estimated_max_intermediate == 0.0
            assert order_relations([], strategy) == []

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SolverError):
            plan_join([rel(("a",), [(1,)])], "quantum")

    def test_deterministic(self):
        rels = [rel(("a", "b"), [(i, j) for i in range(3) for j in range(2)]),
                rel(("b", "c"), [(i, i) for i in range(4)]),
                rel(("c", "a"), [(i, 0) for i in range(3)])]
        plans = {plan_join(rels, "greedy").order for _ in range(5)}
        assert len(plans) == 1


def test_order_relations_returns_same_multiset():
    rels = [rel(("a", "b"), [(1, 2)]), rel(("b", "c"), [(2, 3), (4, 5)])]
    for strategy in STRATEGIES:
        ordered = order_relations(rels, strategy)
        assert sorted(ordered, key=repr) == sorted(rels, key=repr)
