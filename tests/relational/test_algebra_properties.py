"""Property-based tests (hypothesis) for the algebra laws the planner needs.

The cost-guided planner freely reorders binary joins, which is only sound
because the natural join is commutative and associative (up to column
order), ``project∘join`` onto the left scheme is the semijoin, and
selections commute with joins when the predicate only reads one side.
These are exactly the invariants checked here, on small random relations.
"""

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import (
    join_all,
    natural_join,
    project,
    select,
    semijoin,
)
from repro.relational.relation import Relation

# Small shared attribute pool so random schemes overlap often — joins with
# shared attributes are the interesting case.
ATTRS = ("a", "b", "c", "d")
VALUES = st.integers(min_value=0, max_value=3)


@st.composite
def relations(draw, min_arity=1, max_arity=3, max_rows=6):
    arity = draw(st.integers(min_value=min_arity, max_value=max_arity))
    scheme = draw(
        st.permutations(ATTRS).map(lambda p: tuple(p[:arity]))
    )
    rows = draw(
        st.lists(
            st.tuples(*[VALUES] * arity), min_size=0, max_size=max_rows
        )
    )
    return Relation(scheme, rows)


def normalized(relation: Relation):
    """A column-order-independent canonical form: scheme set plus rows as
    attribute→value mappings."""
    return (
        frozenset(relation.attributes),
        frozenset(frozenset(zip(relation.attributes, t)) for t in relation),
    )


@settings(max_examples=80, deadline=None)
@given(relations(), relations())
def test_join_commutative_up_to_column_order(r, s):
    assert normalized(natural_join(r, s)) == normalized(natural_join(s, r))


@settings(max_examples=80, deadline=None)
@given(relations(), relations(), relations())
def test_join_associative_up_to_column_order(r, s, t):
    left = natural_join(natural_join(r, s), t)
    right = natural_join(r, natural_join(s, t))
    assert normalized(left) == normalized(right)


@settings(max_examples=50, deadline=None)
@given(relations(), relations(), relations())
def test_join_all_order_independent(r, s, t):
    results = {
        strategy: join_all([r, s, t], strategy=strategy)
        for strategy in ("greedy", "smallest", "textbook")
    }
    forms = {normalized(rel) for rel in results.values()}
    assert len(forms) == 1


@settings(max_examples=80, deadline=None)
@given(relations())
def test_join_unit_identity(r):
    assert natural_join(r, Relation.unit()) == r
    assert normalized(natural_join(Relation.unit(), r)) == normalized(r)


@settings(max_examples=80, deadline=None)
@given(relations())
def test_join_idempotent(r):
    assert normalized(natural_join(r, r)) == normalized(r)


@settings(max_examples=80, deadline=None)
@given(relations(), relations())
def test_project_join_is_semijoin(r, s):
    """π_{scheme(r)}(r ⋈ s) = r ⋉ s — the identity Yannakakis rests on."""
    assert project(natural_join(r, s), r.attributes) == semijoin(r, s)


@settings(max_examples=80, deadline=None)
@given(relations(), relations())
def test_selection_pushdown(r, s):
    """A predicate reading only r's first attribute commutes with the join:
    σ_p(r ⋈ s) = σ_p(r) ⋈ s."""
    attr = r.attributes[0]
    predicate = lambda row: row[attr] % 2 == 0
    pushed = natural_join(select(r, predicate), s)
    late = select(natural_join(r, s), predicate)
    assert normalized(pushed) == normalized(late)


@settings(max_examples=80, deadline=None)
@given(relations())
def test_select_conjunction_is_composition(r):
    attr = r.attributes[0]
    p = lambda row: row[attr] >= 1
    q = lambda row: row[attr] <= 2
    both = select(r, lambda row: p(row) and q(row))
    assert select(select(r, p), q) == both


@settings(max_examples=80, deadline=None)
@given(relations())
def test_project_composition(r):
    """Projecting twice equals projecting once onto the inner scheme."""
    sub = r.attributes[: max(1, r.arity - 1)]
    inner = sub[:1]
    assert project(project(r, sub), inner) == project(r, inner)


@settings(max_examples=50, deadline=None)
@given(relations(), relations())
def test_semijoin_never_grows(r, s):
    reduced = semijoin(r, s)
    assert reduced.tuples <= r.tuples
    # Semijoin is idempotent with the same reducer.
    assert semijoin(reduced, s) == reduced


# --- indexed vs scan execution -------------------------------------------
#
# The hash-indexed build/probe operators must be observationally identical
# to the nested-loop scan on every input.  Pairs are drawn with controlled
# schema overlap so all three interesting regimes are exercised: shared
# (same scheme → intersection), disjoint (no common attribute → Cartesian
# product), and overlapping (a proper subset of attributes in common).

DISJOINT_ATTRS = ("e", "f")


@st.composite
def relation_pairs(draw, max_rows=6):
    """A pair of relations whose schemes share all, some, or none of their
    attributes, with the overlap regime chosen by hypothesis."""
    overlap = draw(st.sampled_from(["shared", "overlapping", "disjoint"]))
    left = draw(relations(max_rows=max_rows))
    if overlap == "shared":
        scheme = draw(st.permutations(left.attributes).map(tuple))
    elif overlap == "disjoint":
        arity = draw(st.integers(min_value=1, max_value=len(DISJOINT_ATTRS)))
        scheme = draw(
            st.permutations(DISJOINT_ATTRS).map(lambda p: tuple(p[:arity]))
        )
    else:
        common = draw(st.sampled_from(left.attributes))
        extra = draw(st.sampled_from(DISJOINT_ATTRS))
        scheme = (common, extra)
    rows = draw(
        st.lists(
            st.tuples(*[VALUES] * len(scheme)), min_size=0, max_size=max_rows
        )
    )
    return left, Relation(scheme, rows)


@settings(max_examples=120, deadline=None)
@given(relation_pairs())
def test_join_indexed_matches_scan(pair):
    r, s = pair
    assert natural_join(r, s, execution="indexed") == natural_join(
        r, s, execution="scan"
    )


@settings(max_examples=120, deadline=None)
@given(relation_pairs())
def test_join_interned_matches_scan(pair):
    """The radix-packed code-space join is observationally identical to the
    nested-loop scan (and hence to the indexed execution) on every input."""
    r, s = pair
    assert natural_join(r, s, execution="interned") == natural_join(
        r, s, execution="scan"
    )


@settings(max_examples=120, deadline=None)
@given(relation_pairs())
def test_semijoin_interned_matches_scan_and_shrinks(pair):
    r, s = pair
    interned = semijoin(r, s, execution="interned")
    assert interned == semijoin(r, s, execution="scan")
    assert interned.tuples <= r.tuples


@settings(max_examples=120, deadline=None)
@given(relation_pairs())
def test_join_indexed_commutative_up_to_column_order(pair):
    r, s = pair
    assert normalized(natural_join(r, s, execution="indexed")) == normalized(
        natural_join(s, r, execution="indexed")
    )


@settings(max_examples=120, deadline=None)
@given(relation_pairs())
def test_semijoin_indexed_matches_scan_and_shrinks(pair):
    r, s = pair
    indexed = semijoin(r, s, execution="indexed")
    assert indexed == semijoin(r, s, execution="scan")
    assert indexed.tuples <= r.tuples


@settings(max_examples=50, deadline=None)
@given(relations(), relations(), relations())
def test_join_all_compound_strategies_agree(r, s, t):
    """Order and execution are orthogonal: every order+execution compound
    spec computes the same relation."""
    specs = [
        "greedy+indexed", "greedy+scan", "smallest+scan",
        "textbook+indexed", "textbook+scan", "indexed", "scan",
        "interned", "greedy+interned", "textbook+interned",
    ]
    forms = {
        normalized(join_all([r, s, t], strategy=spec)) for spec in specs
    }
    assert len(forms) == 1
