"""Unit tests for the Relation value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ArityError, SchemaError, VocabularyError
from repro.relational.relation import Relation


class TestConstruction:
    def test_basic(self):
        r = Relation(("x", "y"), [(1, 2), (2, 3)])
        assert r.arity == 2
        assert len(r) == 2
        assert (1, 2) in r

    def test_duplicate_rows_collapse(self):
        r = Relation(("x",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_rows_are_tuples_whatever_the_input(self):
        r = Relation(("x", "y"), [[1, 2]])
        assert (1, 2) in r

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            Relation(("x", "x"), [])

    def test_rejects_empty_attribute_name(self):
        with pytest.raises(SchemaError):
            Relation(("",), [])

    def test_rejects_non_string_attribute(self):
        with pytest.raises(SchemaError):
            Relation((1,), [])

    def test_rejects_wrong_arity_row(self):
        with pytest.raises(ArityError):
            Relation(("x", "y"), [(1,)])

    def test_empty(self):
        r = Relation.empty(("a", "b"))
        assert not r
        assert r.arity == 2

    def test_unit_contains_empty_tuple(self):
        u = Relation.unit()
        assert len(u) == 1
        assert () in u
        assert u.arity == 0

    def test_from_mappings(self):
        r = Relation.from_mappings(("x", "y"), [{"x": 1, "y": 2}, {"y": 4, "x": 3}])
        assert r.tuples == frozenset({(1, 2), (3, 4)})


class TestProtocol:
    def test_equality_requires_same_scheme(self):
        a = Relation(("x",), [(1,)])
        b = Relation(("y",), [(1,)])
        assert a != b

    def test_equality_and_hash(self):
        a = Relation(("x", "y"), [(1, 2)])
        b = Relation(("x", "y"), {(1, 2)})
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_yields_rows(self):
        r = Relation(("x",), [(1,), (2,)])
        assert sorted(r) == [(1,), (2,)]

    def test_bool(self):
        assert not Relation.empty(("x",))
        assert Relation(("x",), [(1,)])

    def test_repr_small_and_large(self):
        small = Relation(("x",), [(1,)])
        assert "(1,)" in repr(small)
        large = Relation(("x",), [(i,) for i in range(10)])
        assert "+6" in repr(large)


class TestViews:
    def test_rows_as_mappings(self):
        r = Relation(("x", "y"), [(1, 2)])
        assert list(r.rows_as_mappings()) == [{"x": 1, "y": 2}]

    def test_active_domain(self):
        r = Relation(("x", "y"), [(1, 2), (2, 3)])
        assert r.active_domain() == frozenset({1, 2, 3})

    def test_column(self):
        r = Relation(("x", "y"), [(1, 2), (2, 3)])
        assert r.column("x") == frozenset({1, 2})
        assert r.column("y") == frozenset({2, 3})

    def test_index_of_unknown_raises(self):
        r = Relation(("x",), [])
        with pytest.raises(VocabularyError) as exc:
            r.index_of("z")
        assert "'z'" in str(exc.value) and "'x'" in str(exc.value)

    def test_has_attribute(self):
        r = Relation(("x",), [])
        assert r.has_attribute("x")
        assert not r.has_attribute("y")


class TestHashIndexes:
    def test_index_groups_rows_by_key(self):
        r = Relation(("x", "y"), [(1, 2), (1, 3), (2, 2)])
        index = r.index_on(("x",))
        assert set(index) == {(1,), (2,)}
        assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
        assert index[(2,)] == [(2, 2)]

    def test_index_key_order_matters(self):
        r = Relation(("x", "y"), [(1, 2)])
        assert set(r.index_on(("x", "y"))) == {(1, 2)}
        assert set(r.index_on(("y", "x"))) == {(2, 1)}

    def test_index_is_memoized(self):
        r = Relation(("x", "y"), [(1, 2), (2, 3)])
        assert not r.has_index(("y",))
        first = r.index_on(("y",))
        assert r.has_index(("y",))
        assert r.index_on(("y",)) is first

    def test_empty_key_indexes_all_rows(self):
        r = Relation(("x",), [(1,), (2,)])
        index = r.index_on(())
        assert set(index) == {()}
        assert sorted(index[()]) == [(1,), (2,)]

    def test_index_on_unknown_attribute_raises(self):
        r = Relation(("x",), [(1,)])
        with pytest.raises(VocabularyError):
            r.index_on(("ghost",))

    def test_index_covers_every_row_exactly_once(self):
        r = Relation(("x", "y"), [(i % 3, i) for i in range(9)])
        index = r.index_on(("x",))
        flattened = [t for bucket in index.values() for t in bucket]
        assert sorted(flattened) == sorted(r.tuples)


rows_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12
)


@given(rows_strategy)
def test_relation_is_a_set(rows):
    r = Relation(("x", "y"), rows)
    assert r.tuples == frozenset(map(tuple, rows))


@given(rows_strategy, rows_strategy)
def test_relation_equality_is_extensional(rows1, rows2):
    r1 = Relation(("x", "y"), rows1)
    r2 = Relation(("x", "y"), rows2)
    assert (r1 == r2) == (set(map(tuple, rows1)) == set(map(tuple, rows2)))
