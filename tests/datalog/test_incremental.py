"""The incremental-maintenance differential wall: after *any* interleaved
stream of insert/delete batches, the maintained fixpoint equals
``evaluate_seminaive`` recomputed from scratch on the final EDB — for DRed
on recursive programs, counting on non-recursive ones, and batches that
kill and rederive facts through alternative supports."""

import random

import pytest

from repro.datalog.engine import evaluate_seminaive
from repro.datalog.incremental import IncrementalEvaluation
from repro.datalog.library import (
    non_two_colorability_program,
    transitive_closure_program,
)
from repro.datalog.parser import parse_program
from repro.errors import DomainError, VocabularyError

TC = transitive_closure_program()

#: A non-recursive program (two-hop + marker join) for the counting mode.
NONREC = parse_program(
    """
    H(X, Z) :- E(X, Y), E(Y, Z).
    M(X, Z) :- H(X, Z), L(X).
    """,
    goal="M",
)


def from_scratch(program, edb):
    return evaluate_seminaive(program, edb)


def random_stream(rng, nodes, n_batches, predicates=("E",), arity=2):
    """A random interleaved insert/delete stream plus its cumulative EDB."""
    state = {p: set() for p in predicates}
    batches = []
    for _ in range(n_batches):
        inserts = {}
        deletes = {}
        for p in predicates:
            ins = {
                tuple(rng.randrange(nodes) for _ in range(arity))
                for _ in range(rng.randrange(4))
            }
            if state[p] and rng.random() < 0.7:
                dels = set(
                    rng.sample(sorted(state[p]), k=min(len(state[p]), rng.randrange(1, 3)))
                )
            else:
                dels = set()
            # A fact both deleted and inserted in one batch ends up present
            # (apply() deletes before inserting) — keep the mirror in sync.
            state[p] -= dels
            state[p] |= ins
            if ins:
                inserts[p] = ins
            if dels:
                deletes[p] = dels
        batches.append((inserts, deletes))
    return batches, state


@pytest.mark.parametrize("seed", range(100))
def test_dred_matches_from_scratch_on_transitive_closure(seed):
    rng = random.Random(seed)
    inc = IncrementalEvaluation(TC, {}, deletion="dred")
    batches, state = random_stream(rng, nodes=7, n_batches=6)
    for inserts, deletes in batches:
        inc.apply(inserts, deletes)
    expected = from_scratch(TC, {p: frozenset(v) for p, v in state.items()})
    assert inc.idb_values() == expected
    assert inc.edb_values() == {"E": frozenset(state["E"])}


@pytest.mark.parametrize("seed", range(60))
def test_counting_matches_from_scratch_on_nonrecursive(seed):
    rng = random.Random(1000 + seed)
    inc = IncrementalEvaluation(NONREC, {}, deletion="counting")
    batches, state = random_stream(
        rng, nodes=6, n_batches=5, predicates=("E",)
    )
    # Interleave unary L updates by hand (random_stream is binary-only).
    for inserts, deletes in batches:
        if rng.random() < 0.6:
            l_ins = {(rng.randrange(6),) for _ in range(rng.randrange(3))}
            inserts = dict(inserts, L=l_ins)
        inc.apply(inserts, deletes)
    edb = {"E": frozenset(state["E"]), "L": inc.value("L")}
    assert inc.idb_values() == from_scratch(NONREC, edb)


@pytest.mark.parametrize("seed", range(40))
def test_dred_matches_from_scratch_on_odd_walks(seed):
    """The 4-Datalog non-2-colorability program: mutually recursive through
    longer joins, exercising multi-delta rules under deletion."""
    program = non_two_colorability_program()
    rng = random.Random(2000 + seed)
    inc = IncrementalEvaluation(program, {}, deletion="dred")
    batches, state = random_stream(rng, nodes=5, n_batches=4)
    for inserts, deletes in batches:
        inc.apply(inserts, deletes)
    expected = from_scratch(program, {"E": frozenset(state["E"])})
    assert inc.idb_values() == expected


def test_kill_and_rederive_through_alternative_support():
    """Deleting one edge of a diamond kills nothing reachable via the other
    path: DRed over-deletes, then rederivation rescues."""
    inc = IncrementalEvaluation(
        TC, {"E": {(0, 1), (1, 3), (0, 2), (2, 3)}}, deletion="dred"
    )
    assert (0, 3) in inc.value("T")
    report = inc.apply(deletes={"E": {(1, 3)}})
    # (0,3) survives via 0→2→3; (1,3) the T-fact dies with its only edge.
    assert (0, 3) in inc.value("T")
    assert (1, 3) not in inc.value("T")
    assert (1, 3) in report.idb_removed["T"]
    assert inc.idb_values() == from_scratch(TC, {"E": inc.value("E")})


def test_cycle_only_support_stays_dead():
    """Facts whose remaining 'support' is a derivation cycle must die:
    cutting the chain into a 2-cycle's tail removes reachability."""
    inc = IncrementalEvaluation(TC, {"E": {(0, 1), (1, 2), (2, 1)}})
    assert (0, 2) in inc.value("T")
    inc.apply(deletes={"E": {(0, 1)}})
    assert inc.idb_values() == from_scratch(TC, {"E": {(1, 2), (2, 1)}})
    assert (0, 2) not in inc.value("T")


def test_redundant_updates_are_no_ops():
    inc = IncrementalEvaluation(TC, {"E": {(1, 2)}})
    before_gen = inc.generation
    report = inc.apply(inserts={"E": {(1, 2)}}, deletes={"E": {(9, 9)}})
    assert report.dirty == frozenset()
    assert report.rows_added == 0 and report.rows_removed == 0
    assert inc.generation == before_gen


def test_generation_bumps_and_structure_memo_refreshes():
    inc = IncrementalEvaluation(TC, {"E": {(1, 2)}})
    s0 = inc.as_structure()
    assert inc.as_structure() is s0
    inc.apply(inserts={"E": {(2, 3)}})
    s1 = inc.as_structure()
    assert s1 is not s0
    assert s1.relation("T") == inc.value("T")


def test_delete_then_insert_same_fact_in_one_batch_keeps_it():
    inc = IncrementalEvaluation(TC, {"E": {(1, 2)}})
    report = inc.apply(inserts={"E": {(1, 2)}}, deletes={"E": {(1, 2)}})
    assert (1, 2) in inc.value("E")
    assert (1, 2) in inc.value("T")
    assert report.dirty == frozenset()


def test_counting_rejects_recursive_programs():
    with pytest.raises(DomainError):
        IncrementalEvaluation(TC, {}, deletion="counting")


def test_unknown_deletion_mode_rejected():
    with pytest.raises(DomainError):
        IncrementalEvaluation(TC, {}, deletion="magic")


def test_updates_must_target_edb_predicates():
    inc = IncrementalEvaluation(TC, {"E": {(1, 2)}})
    with pytest.raises(VocabularyError):
        inc.apply(inserts={"T": {(5, 6)}})
    with pytest.raises(VocabularyError):
        inc.apply(inserts={"Nope": {(1,)}})


def test_value_rejects_unknown_predicate():
    inc = IncrementalEvaluation(TC, {})
    with pytest.raises(VocabularyError):
        inc.value("Nope")


def test_update_report_counts_are_exact():
    inc = IncrementalEvaluation(TC, {"E": {(1, 2)}})
    report = inc.apply(inserts={"E": {(2, 3)}})
    assert report.edb_added == {"E": frozenset({(2, 3)})}
    assert report.idb_added["T"] == frozenset({(2, 3), (1, 3)})
    assert report.rows_added == 3
    assert sorted(report.dirty) == ["E", "T"]
