"""The canonical program ρ_B (Theorem 4.5(3)): differential tests against
the direct game algorithm, and k-Datalog shape checks."""

import pytest

from repro.datalog.canonical import DOMAIN_PREDICATE, canonical_program
from repro.errors import DomainError
from repro.games.pebble import spoiler_wins
from repro.generators.graphs import (
    cycle_graph,
    directed_cycle_structure,
    graph_as_digraph_structure,
    random_digraph,
)
from repro.relational.structure import Structure

K2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
LOOP = Structure({"E": 2}, [0], {"E": [(0, 0)]})


class TestConstruction:
    def test_k_must_cover_vocabulary_arity(self):
        with pytest.raises(DomainError):
            canonical_program(K2, 1)

    def test_k_must_be_positive(self):
        with pytest.raises(DomainError):
            canonical_program(K2, 0)

    def test_program_is_k_datalog_in_the_em_variables(self):
        cp = canonical_program(K2, 2)
        # Rule bodies use at most k variables plus the head variables; the
        # head always has ≤ k variables per the k-Datalog definition.
        assert cp.program.max_head_variables() <= 2

    def test_edb_predicates_are_input_relations_plus_domain(self):
        cp = canonical_program(K2, 2)
        edbs = cp.program.edb_predicates()
        assert "E" in edbs
        assert DOMAIN_PREDICATE in edbs

    def test_template_with_total_loop_never_loses(self):
        # Every structure maps into a looped vertex: the Spoiler can never
        # win, and the closure cannot even express an empty obstruction.
        cp = canonical_program(LOOP, 2)
        for n in (2, 3):
            assert not cp.spoiler_wins(directed_cycle_structure(n))


class TestAgreementWithGame:
    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (5, 2), (3, 3), (4, 3), (5, 3)])
    def test_symmetric_cycles_vs_k2(self, n, k):
        cp = canonical_program(K2, k)
        a = graph_as_digraph_structure(cycle_graph(n))
        assert cp.spoiler_wins(a) == spoiler_wins(a, K2, k)

    @pytest.mark.parametrize("k", [2, 3])
    def test_odd_cycles_refuted_exactly_at_k3(self, k):
        cp = canonical_program(K2, k)
        a = graph_as_digraph_structure(cycle_graph(5))
        assert cp.spoiler_wins(a) == (k >= 3)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_digraphs_vs_k2(self, seed):
        cp = canonical_program(K2, 2)
        a = random_digraph(4, 0.4, seed=seed)
        assert cp.spoiler_wins(a) == spoiler_wins(a, K2, 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_digraphs_vs_random_template(self, seed):
        b = random_digraph(2, 0.6, seed=seed + 500, loops=True)
        cp = canonical_program(b, 2)
        a = random_digraph(3, 0.5, seed=seed)
        assert cp.spoiler_wins(a) == spoiler_wins(a, b, 2)

    def test_empty_input_structure(self):
        cp = canonical_program(K2, 2)
        empty = Structure({"E": 2}, [], {})
        assert not cp.spoiler_wins(empty)

    def test_empty_template_domain(self):
        empty_b = Structure({"E": 2}, [], {})
        cp = canonical_program(empty_b, 2)
        a = directed_cycle_structure(2)
        assert cp.spoiler_wins(a)  # handled as a special case

    def test_vocabulary_mismatch_rejected(self):
        cp = canonical_program(K2, 2)
        with pytest.raises(DomainError):
            cp.spoiler_wins(Structure({"F": 1}, [0], {}))


class TestSoundnessViaHomomorphism:
    """goal derived ⇒ no homomorphism (the k-Datalog refutation is sound)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_refutations_sound(self, seed):
        from repro.relational.homomorphism import homomorphism_exists

        cp = canonical_program(K2, 3)
        a = random_digraph(4, 0.35, seed=seed)
        if cp.spoiler_wins(a):
            assert not homomorphism_exists(a, K2)
