"""Datalog syntax, parsing, and the two bottom-up evaluators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.engine import (
    evaluate_naive,
    evaluate_seminaive,
    goal_holds,
    goal_relation,
)
from repro.datalog.library import non_two_colorability_program, transitive_closure_program
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.syntax import Program, Rule
from repro.cq.query import Atom, Var
from repro.errors import ParseError
from repro.generators.graphs import cycle_graph, graph_as_digraph_structure


class TestSyntax:
    def test_rule_safety(self):
        with pytest.raises(ParseError):
            Rule(Atom("P", (Var("X"),)), [Atom("E", (Var("Y"),))])

    def test_fact_must_be_ground(self):
        with pytest.raises(ParseError):
            Rule(Atom("P", (Var("X"),)), [])
        Rule(Atom("P", (1,)), [])  # ground fact fine

    def test_idb_edb_partition(self):
        p = transitive_closure_program()
        assert p.idb_predicates() == {"T"}
        assert p.edb_predicates() == {"E"}

    def test_goal_must_be_idb(self):
        with pytest.raises(ParseError):
            Program([parse_rule("P(X) :- E(X).")], goal="E")

    def test_arity_consistency(self):
        with pytest.raises(ParseError):
            Program(
                [parse_rule("P(X) :- E(X)."), parse_rule("P(X, Y) :- E(X), E(Y).")],
                goal="P",
            )

    def test_k_datalog_width(self):
        p = non_two_colorability_program()
        assert p.width() == 4
        assert p.is_k_datalog(4)
        assert not p.is_k_datalog(3)
        assert transitive_closure_program().width() == 3


class TestParser:
    def test_comments_stripped(self):
        p = parse_program(
            """
            % transitive closure
            T(X, Y) :- E(X, Y).  % base
            T(X, Y) :- T(X, Z), E(Z, Y).
            """,
            goal="T",
        )
        assert len(p.rules) == 2

    def test_nullary_goal_without_parens(self):
        p = parse_program("Q :- E(X, X).", goal="Q")
        assert p.rules[0].head.arity == 0

    def test_facts_in_program(self):
        p = parse_program(
            """
            E(1, 2).
            T(X, Y) :- E(X, Y).
            """,
            goal="T",
        )
        out = goal_relation(p, {})
        assert out == frozenset({(1, 2)})


class TestEvaluation:
    def test_transitive_closure(self):
        p = transitive_closure_program()
        db = {"E": {(1, 2), (2, 3), (3, 4)}}
        expected = {(i, j) for i in range(1, 5) for j in range(i + 1, 5)}
        assert evaluate_seminaive(p, db)["T"] == frozenset(expected)

    def test_cyclic_closure_terminates(self):
        p = transitive_closure_program()
        db = {"E": {(1, 2), (2, 1)}}
        out = evaluate_seminaive(p, db)["T"]
        assert out == frozenset({(1, 1), (1, 2), (2, 1), (2, 2)})

    def test_structure_as_database(self):
        p = non_two_colorability_program()
        assert goal_holds(p, graph_as_digraph_structure(cycle_graph(5)))
        assert not goal_holds(p, graph_as_digraph_structure(cycle_graph(6)))

    def test_constants_in_rules(self):
        p = parse_program("Special(X) :- E(1, X).", goal="Special")
        out = goal_relation(p, {"E": {(1, 2), (3, 4)}})
        assert out == frozenset({(2,)})

    def test_repeated_variables_in_body(self):
        p = parse_program("Loop(X) :- E(X, X).", goal="Loop")
        out = goal_relation(p, {"E": {(1, 1), (1, 2)}})
        assert out == frozenset({(1,)})

    def test_constant_in_head(self):
        p = parse_program("Tag(X, marked) :- E(X, X).", goal="Tag")
        out = goal_relation(p, {"E": {(1, 1)}})
        assert out == frozenset({(1, "marked")})

    def test_mutual_recursion(self):
        p = parse_program(
            """
            Even(X) :- Zero(X).
            Even(X) :- Succ(Y, X), Odd(Y).
            Odd(X) :- Succ(Y, X), Even(Y).
            """,
            goal="Even",
        )
        db = {"Zero": {(0,)}, "Succ": {(i, i + 1) for i in range(6)}}
        assert evaluate_seminaive(p, db)["Even"] == frozenset({(0,), (2,), (4,), (6,)})

    def test_wrong_edb_arity_raises(self):
        from repro.errors import VocabularyError

        p = transitive_closure_program()
        with pytest.raises(VocabularyError):
            evaluate_seminaive(p, {"E": {(1, 2, 3)}})

    def test_seminaive_reuses_edb_indexes_across_rounds(self):
        """The static EDB relation is indexed once up front (warm_index via
        the atom cache), so the many delta rounds of a long chain probe it
        for free instead of rebuilding a hash table per round."""
        from repro.relational.stats import collect_stats

        p = transitive_closure_program()
        db = {"E": {(i, i + 1) for i in range(11)}}
        with collect_stats() as stats:
            out = evaluate_seminaive(p, db)
        assert out["T"] == frozenset(
            (i, j) for i in range(12) for j in range(i + 1, 12)
        )
        # One chain-length's worth of delta rounds, but E's join-key index
        # is built exactly once.
        assert stats.index_builds < stats.joins
        assert stats.operator_counts.get("index_build", 0) == 1

    def test_seminaive_scan_strategy_agrees_and_skips_indexes(self):
        from repro.relational.stats import collect_stats

        p = transitive_closure_program()
        db = {"E": {(i, i + 1) for i in range(6)}}
        with collect_stats() as stats:
            out = evaluate_seminaive(p, db, strategy="scan")
        assert out == evaluate_seminaive(p, db)
        assert stats.index_builds == 0
        assert stats.hash_probes == 0


edges = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10)


@settings(max_examples=40, deadline=None)
@given(edges)
def test_naive_and_seminaive_agree_on_closure(edge_set):
    p = transitive_closure_program()
    db = {"E": edge_set}
    assert evaluate_naive(p, db) == evaluate_seminaive(p, db)


@settings(max_examples=40, deadline=None)
@given(edges)
def test_naive_and_seminaive_agree_on_non2col(edge_set):
    p = non_two_colorability_program()
    db = {"E": edge_set}
    assert evaluate_naive(p, db) == evaluate_seminaive(p, db)


@settings(max_examples=30, deadline=None)
@given(edges)
def test_non2col_matches_bipartiteness(edge_set):
    """The paper's 4-Datalog program is exactly non-2-colorability on
    symmetric inputs."""
    from repro.width.graph import Graph

    p = non_two_colorability_program()
    symmetric = edge_set | {(b, a) for a, b in edge_set}
    db = {"E": symmetric}
    g = Graph(edges=[(a, b) for a, b in symmetric if a != b])
    has_loop = any(a == b for a, b in symmetric)
    assert goal_holds(p, db) == (has_loop or not g.is_bipartite())


class TestProgramIntrospection:
    def test_dependency_graph(self):
        p = non_two_colorability_program()
        deps = p.dependency_graph()
        assert deps["P"] == frozenset({"P"})
        assert deps["Q"] == frozenset({"P"})

    def test_recursion_detection(self):
        assert transitive_closure_program().is_recursive()
        assert non_two_colorability_program().is_recursive()
        flat = parse_program("Q(X) :- E(X, Y).", goal="Q")
        assert not flat.is_recursive()

    def test_mutual_recursion_detected(self):
        p = parse_program(
            """
            Even(X) :- Zero(X).
            Even(X) :- Succ(Y, X), Odd(Y).
            Odd(X) :- Succ(Y, X), Even(Y).
            """,
            goal="Even",
        )
        assert p.is_recursive()
        assert "Odd" in p.dependency_graph()["Even"]

    def test_linearity(self):
        assert transitive_closure_program().is_linear()
        assert non_two_colorability_program().is_linear()
        nonlinear = parse_program(
            """
            T(X, Y) :- E(X, Y).
            T(X, Y) :- T(X, Z), T(Z, Y).
            """,
            goal="T",
        )
        assert not nonlinear.is_linear()
        assert nonlinear.is_recursive()
