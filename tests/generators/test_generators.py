"""Workload generators: shape and determinism checks."""

import pytest

from repro.generators.csp_random import (
    coloring_instance,
    csp_from_graph,
    random_binary_csp,
)
from repro.generators.graphs import (
    complete_graph,
    cycle_graph,
    directed_cycle_structure,
    graph_as_digraph_structure,
    grid_graph,
    partial_ktree,
    path_graph,
    random_digraph,
    random_graph,
)
from repro.generators.sat import (
    random_2sat,
    random_affine_instance,
    random_horn,
    random_ksat,
    random_one_in_three_instance,
)
from repro.generators.views_random import chain_extensions, random_graph_database
from repro.views.certain import ViewSetup
from repro.width.treedecomp import treewidth_exact


class TestGraphGenerators:
    def test_cycle_path_complete_shapes(self):
        assert cycle_graph(5).num_edges() == 5
        assert path_graph(5).num_edges() == 4
        assert complete_graph(4).num_edges() == 6
        assert grid_graph(2, 3).num_vertices() == 6

    def test_random_graph_deterministic(self):
        g1 = random_graph(8, 0.5, seed=7)
        g2 = random_graph(8, 0.5, seed=7)
        assert set(g1.edges()) == set(g2.edges())
        g3 = random_graph(8, 0.5, seed=8)
        assert set(g1.edges()) != set(g3.edges())

    def test_partial_ktree_respects_width(self):
        for k in (1, 2, 3):
            g = partial_ktree(9, k, 1.0, seed=k)
            assert treewidth_exact(g) <= k

    def test_digraph_structures(self):
        s = directed_cycle_structure(4)
        assert len(s.relation("E")) == 4
        sym = graph_as_digraph_structure(cycle_graph(4))
        assert len(sym.relation("E")) == 8

    def test_random_digraph_no_loops_by_default(self):
        s = random_digraph(5, 0.9, seed=1)
        assert all(u != v for u, v in s.relation("E"))


class TestCSPGenerators:
    def test_random_binary_csp_shape(self):
        inst = random_binary_csp(6, 3, 8, 0.3, seed=0)
        assert len(inst.variables) == 6
        assert len(inst.constraints) == 8
        assert all(c.arity == 2 for c in inst.constraints)

    def test_tightness_zero_always_solvable(self):
        from repro.csp.solvers import backtracking

        inst = random_binary_csp(5, 2, 6, 0.0, seed=0)
        assert backtracking.is_solvable(inst)

    def test_tightness_one_unsolvable(self):
        from repro.csp.solvers import backtracking

        inst = random_binary_csp(5, 2, 6, 1.0, seed=0)
        assert not backtracking.is_solvable(inst)

    def test_coloring_instance_correct(self):
        inst = coloring_instance(cycle_graph(4), 2)
        assert len(inst.constraints) == 4
        solution = {0: 0, 1: 1, 2: 0, 3: 1}
        assert inst.is_solution(solution)

    def test_csp_from_graph(self):
        inst = csp_from_graph(path_graph(3), frozenset({(0, 1)}), [0, 1])
        assert len(inst.constraints) == 2


class TestSATGenerators:
    def test_ksat_clause_sizes(self):
        f = random_ksat(6, 10, 3, seed=0)
        assert all(len(c) == 3 for c in f.clauses)

    def test_2sat_is_2cnf(self):
        assert random_2sat(5, 8, seed=0).is_2cnf()

    def test_horn_is_horn(self):
        assert random_horn(6, 10, seed=0).is_horn()

    def test_affine_instance_is_affine(self):
        from repro.dichotomy.schaefer import SchaeferClass, classify_instance

        inst = random_affine_instance(5, 4, seed=0)
        assert SchaeferClass.AFFINE in classify_instance(inst)

    def test_one_in_three_untractable_template(self):
        from repro.dichotomy.schaefer import classify_instance

        inst = random_one_in_three_instance(5, 3, seed=0)
        assert classify_instance(inst) == frozenset()


class TestViewGenerators:
    def test_random_graph_database(self):
        db = random_graph_database(5, 10, ["a", "b"], seed=0)
        assert db.num_edges() <= 10
        assert db.alphabet <= frozenset({"a", "b"})

    def test_chain_extensions(self):
        vs = ViewSetup({"V1": "a", "V2": "b"})
        chained = chain_extensions(vs, ["V1", "V2"], 4)
        total = sum(len(p) for p in chained.extensions.values())
        assert total == 4
        assert ("o0", "o1") in chained.extensions["V1"]
        assert ("o1", "o2") in chained.extensions["V2"]
