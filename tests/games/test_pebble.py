"""Existential k-pebble games: the engine behind Sections 4–5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError, VocabularyError
from repro.games.pebble import (
    duplicator_wins,
    has_forth_property,
    is_winning_strategy,
    largest_winning_strategy,
    solve_game,
    spoiler_wins,
)
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure


def digraph(n, edges):
    return Structure({"E": 2}, range(n), {"E": edges})


def sym_cycle(n):
    edges = []
    for i in range(n):
        edges += [(i, (i + 1) % n), ((i + 1) % n, i)]
    return digraph(n, edges)


def clique(k):
    return digraph(k, [(i, j) for i in range(k) for j in range(k) if i != j])


K2 = clique(2)
K3 = clique(3)


class TestStrategies:
    def test_unknown_strategy_raises(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="unknown propagation strategy"):
            solve_game(K2, K2, 2, strategy="bogus")

    def test_naive_and_residual_fixpoints_identical(self):
        pairs = [
            (sym_cycle(3), K2),  # spoiler wins at k=3
            (sym_cycle(5), K2),
            (sym_cycle(4), K2),  # homomorphic: duplicator wins every k
            (K3, sym_cycle(5)),
        ]
        for a, b in pairs:
            for k in (1, 2, 3):
                naive = largest_winning_strategy(a, b, k, strategy="naive")
                residual = largest_winning_strategy(a, b, k, strategy="residual")
                assert naive == residual

    def test_both_strategies_publish_counters(self):
        from repro.consistency.propagation import collect_propagation

        for strategy in ("naive", "residual"):
            with collect_propagation() as stats:
                solve_game(sym_cycle(5), K2, 3, strategy=strategy)
            assert stats.support_checks > 0
            assert stats.wipeouts == 1  # spoiler win = strategy wiped out

    def test_residual_checks_fewer_groups_on_heavy_cascade(self):
        from repro.consistency.propagation import collect_propagation

        with collect_propagation() as naive:
            solve_game(sym_cycle(5), K2, 3, strategy="naive")
        with collect_propagation() as residual:
            solve_game(sym_cycle(5), K2, 3, strategy="residual")
        assert residual.support_checks < naive.support_checks


class TestBasics:
    def test_k_must_be_positive(self):
        with pytest.raises(DomainError):
            solve_game(K2, K2, 0)

    def test_vocabulary_mismatch(self):
        other = Structure({"F": 1}, [0], {})
        with pytest.raises(VocabularyError):
            solve_game(K2, other, 2)

    def test_homomorphic_pair_duplicator_wins_any_k(self):
        # A homomorphism is a winning strategy for every k.
        for k in (1, 2, 3):
            assert duplicator_wins(sym_cycle(4), K2, k)

    def test_triangle_vs_k2(self):
        # Strong 2-consistency holds on the triangle but 3 pebbles refute it.
        assert duplicator_wins(sym_cycle(3), K2, 2)
        assert spoiler_wins(sym_cycle(3), K2, 3)

    def test_odd_cycles_need_three_pebbles(self):
        for n in (3, 5):
            assert duplicator_wins(sym_cycle(n), K2, 2)
            assert spoiler_wins(sym_cycle(n), K2, 3)
        for n in (4, 6):
            assert duplicator_wins(sym_cycle(n), K2, 3)

    def test_k4_vs_k3(self):
        assert spoiler_wins(clique(4), K3, 4)
        # With only 2 pebbles the Duplicator survives: any partial map of
        # ≤2 clique vertices to distinct K3 vertices extends.
        assert duplicator_wins(clique(4), K3, 2)

    def test_empty_a_duplicator_wins(self):
        empty = digraph(0, [])
        assert duplicator_wins(empty, K2, 2)

    def test_empty_b_spoiler_wins(self):
        empty = digraph(0, [])
        assert spoiler_wins(K2, empty, 2)


class TestSoundness:
    """Spoiler winning implies no homomorphism (the sound direction of
    Theorem 4.6 used by the k-consistency solver)."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [2, 3])
    def test_spoiler_win_refutes_homomorphism(self, seed, k):
        from repro.generators.graphs import random_digraph

        a = random_digraph(4, 0.4, seed=seed)
        b = random_digraph(3, 0.4, seed=seed + 100)
        if spoiler_wins(a, b, k):
            assert not homomorphism_exists(a, b)

    @pytest.mark.parametrize("seed", range(10))
    def test_hom_implies_duplicator_win(self, seed):
        from repro.generators.graphs import random_digraph

        a = random_digraph(4, 0.3, seed=seed)
        b = random_digraph(3, 0.5, seed=seed + 50)
        if homomorphism_exists(a, b):
            for k in (1, 2, 3):
                assert duplicator_wins(a, b, k)


class TestStrategyProperties:
    def test_strategy_is_winning_strategy(self):
        strategy = largest_winning_strategy(sym_cycle(4), K2, 2)
        assert is_winning_strategy(strategy, sym_cycle(4), K2, 2)

    def test_strategy_contains_empty_function(self):
        strategy = largest_winning_strategy(sym_cycle(4), K2, 2)
        assert frozenset() in strategy

    def test_strategy_closed_under_restriction(self):
        strategy = largest_winning_strategy(sym_cycle(4), K2, 2)
        for f in strategy:
            for pair in f:
                assert f - {pair} in strategy

    def test_largest_contains_union_property(self):
        """Proposition 5.1: the union of winning strategies is winning, so
        the computed strategy is the union of all of them; removing any
        member that some strategy uses would be wrong.  We verify the
        computed family has the forth property and every member is needed:
        adding any non-member partial hom breaks partial-homomorphy or the
        maximality follows from the fixpoint (spot-check via forth)."""
        a, b = sym_cycle(4), K2
        strategy = largest_winning_strategy(a, b, 2)
        assert has_forth_property(strategy, a, 2)

    def test_monotone_in_b_tuples(self):
        """Adding tuples to B only helps the Duplicator."""
        a = sym_cycle(5)
        small = K2
        bigger = Structure(
            {"E": 2}, range(3), {"E": [(i, j) for i in range(3) for j in range(3) if i != j]}
        )
        for k in (2, 3):
            if duplicator_wins(a, small, k):
                assert duplicator_wins(a, bigger, k)

    def test_spoiler_win_monotone_in_k(self):
        a, b = sym_cycle(5), K2
        wins = [spoiler_wins(a, b, k) for k in (1, 2, 3)]
        # Once the Spoiler wins with k pebbles he wins with more.
        for i in range(len(wins) - 1):
            assert not (wins[i] and not wins[i + 1])

    def test_winning_tuples_reformatting(self):
        result = solve_game(sym_cycle(4), K2, 2)
        rows = result.winning_tuples((0, 1))
        # Adjacent cycle vertices must get distinct colors.
        assert rows == frozenset({(0, 1), (1, 0)})
        rows_same = result.winning_tuples((0, 0))
        assert rows_same == frozenset({(0, 0), (1, 1)})


edge_lists = st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=6)


@settings(max_examples=30, deadline=None)
@given(edge_lists, edge_lists)
def test_game_soundness_property(a_edges, b_edges):
    a = digraph(3, a_edges)
    b = digraph(3, b_edges)
    if homomorphism_exists(a, b):
        assert duplicator_wins(a, b, 2)
    if spoiler_wins(a, b, 2):
        assert not homomorphism_exists(a, b)


@settings(max_examples=25, deadline=None)
@given(edge_lists, edge_lists)
def test_returned_family_is_a_strategy_or_empty(a_edges, b_edges):
    a = digraph(3, a_edges)
    b = digraph(2, [(u % 2, v % 2) for u, v in b_edges])
    strategy = largest_winning_strategy(a, b, 2)
    if strategy:
        assert is_winning_strategy(strategy, a, b, 2)
