"""Theorem 4.5(1): the LFP view of the game agrees with the strategy engine."""

import pytest

from repro.games.lfp import (
    bad_configurations,
    configuration_is_winning,
    duplicator_wins_via_lfp,
    winning_configurations,
)
from repro.games.pebble import duplicator_wins, solve_game
from repro.generators.graphs import (
    cycle_graph,
    graph_as_digraph_structure,
    random_digraph,
)
from repro.relational.structure import Structure

K2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})


def sym_cycle(n):
    return graph_as_digraph_structure(cycle_graph(n))


class TestFixpoint:
    def test_clash_configurations_are_bad(self):
        bad = bad_configurations(sym_cycle(4), K2, 2)
        # Same A-element mapped to two different B-elements.
        assert ((0, 0), (0, 1)) in bad

    def test_violating_configurations_are_bad(self):
        bad = bad_configurations(sym_cycle(4), K2, 2)
        # Adjacent cycle vertices mapped to the same color violate E.
        assert ((0, 1), (0, 0)) in bad

    def test_proper_colorings_are_winning(self):
        winning = winning_configurations(sym_cycle(4), K2, 2)
        assert ((0, 1), (0, 1)) in winning

    def test_monotone_under_rounds(self):
        """The base bad set is contained in the fixpoint (sanity of the
        induction)."""
        a = sym_cycle(3)
        base_bad = {
            cfg
            for cfg in bad_configurations(a, K2, 2)
        }
        assert base_bad  # triangles have violating configurations


class TestAgreementWithStrategyEngine:
    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (5, 2), (3, 3), (4, 3)])
    def test_winner_agrees_on_cycles(self, n, k):
        a = sym_cycle(n)
        assert duplicator_wins_via_lfp(a, K2, k) == duplicator_wins(a, K2, k)

    @pytest.mark.parametrize("seed", range(8))
    def test_winner_agrees_on_random_digraphs(self, seed):
        a = random_digraph(3, 0.5, seed=seed)
        b = random_digraph(3, 0.6, seed=seed + 31)
        assert duplicator_wins_via_lfp(a, b, 2) == duplicator_wins(a, b, 2)

    @pytest.mark.parametrize("n", [3, 4])
    def test_winning_configurations_match_strategy(self, n):
        """The LFP's W^k equals the strategy engine's W^k on distinct-tuple
        configurations (strategy functions are exactly the good tuples)."""
        a = sym_cycle(n)
        game = solve_game(a, K2, 2)
        winning = winning_configurations(a, K2, 2)
        for a0 in a.domain:
            for a1 in a.domain:
                if a0 == a1:
                    continue
                strategy_rows = game.winning_tuples((a0, a1))
                lfp_rows = {
                    (b0, b1)
                    for (abar, bbar) in winning
                    if abar == (a0, a1)
                    for b0, b1 in [bbar]
                }
                assert strategy_rows == lfp_rows

    def test_empty_structures(self):
        empty = Structure({"E": 2}, [], {})
        assert duplicator_wins_via_lfp(empty, K2, 2)
        assert not duplicator_wins_via_lfp(K2, empty, 2)

    def test_configuration_query(self):
        a = sym_cycle(4)
        assert configuration_is_winning(a, K2, 2, (0, 1), (0, 1))
        assert not configuration_is_winning(a, K2, 2, (0, 1), (0, 0))
