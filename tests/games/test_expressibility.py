"""Preservation under k-pebble games (Thm 4.1, Prop 4.3, Cor 4.4)."""

import pytest

from repro.datalog.library import non_two_colorability_program, transitive_closure_program
from repro.datalog.parser import parse_program
from repro.games.expressibility import (
    datalog_query_as_predicate,
    is_preserved_on,
    preservation_counterexamples,
)
from repro.generators.graphs import (
    cycle_graph,
    graph_as_digraph_structure,
    random_digraph,
)
from repro.relational.structure import Structure
from repro.width.graph import Graph


def random_pairs(count, n=3, seed_base=0):
    pairs = []
    for s in range(count):
        pairs.append(
            (random_digraph(n, 0.5, seed=seed_base + s),
             random_digraph(n, 0.5, seed=seed_base + 100 + s))
        )
    return pairs


def structured_pairs():
    """Cycles vs cycles — the classic separating family."""
    cycles = [graph_as_digraph_structure(cycle_graph(n)) for n in (3, 4, 5, 6)]
    return [(a, b) for a in cycles for b in cycles]


class TestTheorem41:
    """k-Datalog queries must satisfy preservation at their width k."""

    def test_non2col_preserved_at_width(self):
        program = non_two_colorability_program()  # 4-Datalog
        query = datalog_query_as_predicate(program)
        pairs = structured_pairs() + random_pairs(10)
        assert is_preserved_on(query, pairs, k=4)

    def test_reachability_query_preserved(self):
        program = parse_program(
            """
            T(X, Y) :- E(X, Y).
            T(X, Y) :- T(X, Z), E(Z, Y).
            Q :- T(X, X).
            """,
            goal="Q",
        )  # "has a directed cycle" — 3-Datalog
        query = datalog_query_as_predicate(program)
        assert is_preserved_on(query, random_pairs(15, seed_base=50), k=3)

    def test_edge_existence_preserved_even_at_k2(self):
        program = parse_program("Q :- E(X, Y).", goal="Q")
        query = datalog_query_as_predicate(program)
        assert is_preserved_on(query, random_pairs(15, seed_base=70), k=2)


class TestRefutation:
    """Non-monotone queries are not in any ∃L^k: exhibit counterexamples."""

    def test_two_colorability_not_expressible(self):
        def is_two_colorable(structure: Structure) -> bool:
            g = Graph()
            for u, v in structure.relation("E"):
                if u == v:
                    return False
                g.add_edge(u, v)
            for x in structure.domain:
                g.add_vertex(x)
            return g.is_bipartite()

        # C4 is 2-colorable, C3 is not, and the Duplicator wins the
        # 2-pebble game on (C4, C3) (both cycles look locally alike).
        pairs = structured_pairs()
        counterexamples = preservation_counterexamples(is_two_colorable, pairs, k=2)
        assert counterexamples, "2-colorability must violate preservation"
        a, b = counterexamples[0]
        assert is_two_colorable(a) and not is_two_colorable(b)

    def test_emptiness_of_edges_not_expressible(self):
        """'E is empty' is non-monotone, hence not ∃L^k for small k on
        suitable pairs: A with no edges ⊨ Q, Duplicator wins vs anything
        total, B with edges ⊭ Q."""

        def no_edges(structure: Structure) -> bool:
            return not structure.relation("E")

        empty = Structure({"E": 2}, [0], {})
        loop = Structure({"E": 2}, [0], {"E": [(0, 0)]})
        counterexamples = preservation_counterexamples(
            no_edges, [(empty, loop)], k=2
        )
        assert counterexamples == [(empty, loop)]


class TestMonotoneButInexpressibleAtLowK:
    def test_non2col_fails_preservation_at_k2(self):
        """¬2COL needs more than 2 pebbles: (C5, C4) separates — the
        Duplicator survives the 2-pebble game from the odd to the even
        cycle, where the query flips."""
        program = non_two_colorability_program()
        query = datalog_query_as_predicate(program)
        c5 = graph_as_digraph_structure(cycle_graph(5))
        c4 = graph_as_digraph_structure(cycle_graph(4))
        counterexamples = preservation_counterexamples(query, [(c5, c4)], k=2)
        assert counterexamples == [(c5, c4)]
