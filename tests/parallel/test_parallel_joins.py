"""The ``execution="parallel"`` operators agree exactly with serial
execution, fall back honestly below the threshold, and account their
fan-out in the parent's stats."""

import random

import pytest

from repro.parallel import parallel_config, worker_reports
from repro.relational.algebra import join_all, natural_join, semijoin
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats


def _rel(attrs, n, width, seed):
    rng = random.Random(seed)
    return Relation(
        attrs, {tuple(rng.randrange(width) for _ in attrs) for _ in range(n)}
    )


def _forced():
    return parallel_config(workers=2, threshold=0)


@pytest.mark.parametrize("seed", range(8))
def test_parallel_natural_join_matches_serial(seed):
    left = _rel(("x", "y"), 150, 12, seed)
    right = _rel(("y", "z"), 150, 12, seed + 100)
    serial = natural_join(left, right)
    with _forced():
        par = natural_join(left, right, execution="parallel")
    assert par == serial
    assert par.attributes == serial.attributes


@pytest.mark.parametrize("seed", range(8))
def test_parallel_semijoin_matches_serial(seed):
    left = _rel(("x", "y"), 150, 10, seed)
    right = _rel(("y", "z"), 150, 10, seed + 100)
    serial = semijoin(left, right)
    with _forced():
        par = semijoin(left, right, execution="parallel")
    assert par == serial
    assert par.attributes == left.attributes


@pytest.mark.parametrize("seed", range(8))
def test_parallel_fold_matches_serial(seed):
    rels = [
        _rel(("x", "y"), 80, 8, seed),
        _rel(("y", "z"), 80, 8, seed + 100),
        _rel(("z", "w"), 80, 8, seed + 200),
    ]
    serial = join_all(rels)
    with _forced():
        par = join_all(rels, execution="parallel")
    assert par == serial
    assert par.attributes == serial.attributes


def test_parallel_fold_with_broadcast_relation():
    """A relation without the partition attribute is broadcast whole."""
    rng = random.Random(5)
    a = _rel(("x", "y"), 90, 6, 1)
    b = _rel(("y", "z"), 90, 6, 2)
    # "w"/"v" never join with the partition attribute "y".
    c = Relation(("w",), {(rng.randrange(3),) for _ in range(3)})
    serial = join_all([a, b, c])
    with _forced():
        par = join_all([a, b, c], execution="parallel")
    assert par == serial


def test_disjoint_schemes_fall_back_to_serial():
    """A pure Cartesian product has no partition key: serial fallback."""
    a = Relation(("x",), [(0,), (1,)])
    b = Relation(("y",), [(2,), (3,)])
    with _forced(), collect_stats() as stats:
        par = join_all([a, b], execution="parallel")
    assert par == join_all([a, b])
    assert stats.parallel_tasks == 0


def test_small_inputs_fall_back_below_threshold():
    left = _rel(("x", "y"), 30, 5, 0)
    right = _rel(("y", "z"), 30, 5, 1)
    with parallel_config(workers=2, threshold=10_000), collect_stats() as stats:
        par = natural_join(left, right, execution="parallel")
    assert par == natural_join(left, right)
    assert stats.parallel_tasks == 0
    assert stats.partitions == 0


def test_single_worker_falls_back():
    left = _rel(("x", "y"), 200, 8, 0)
    right = _rel(("y", "z"), 200, 8, 1)
    with parallel_config(workers=1, threshold=0), collect_stats() as stats:
        par = natural_join(left, right, execution="parallel")
    assert par == natural_join(left, right)
    assert stats.parallel_tasks == 0


def test_empty_operand_yields_empty_result():
    left = Relation.empty(("x", "y"))
    right = _rel(("y", "z"), 100, 6, 2)
    with _forced():
        par = natural_join(left, right, execution="parallel")
    assert len(par) == 0
    assert par.attributes == ("x", "y", "z")


def test_fan_out_is_accounted_in_parent_stats():
    left = _rel(("x", "y"), 200, 10, 3)
    right = _rel(("y", "z"), 200, 10, 4)
    with _forced(), collect_stats() as stats, worker_reports() as reports:
        result = natural_join(left, right, execution="parallel")
    assert stats.parallel_tasks == len(reports) > 0
    assert stats.partitions > 0
    assert stats.operator_counts.get("parallel_gather") == 1
    # Workers emit the shard results; the gather emits the final union.
    shard_emitted = sum(r.stats.tuples_emitted for r in reports)
    assert shard_emitted >= len(result)
    assert stats.tuples_emitted == shard_emitted + len(result)


def test_parse_strategy_accepts_parallel():
    from repro.relational.planner import parse_strategy

    assert parse_strategy("parallel") == ("greedy", "parallel")
    assert parse_strategy("textbook+parallel") == ("textbook", "parallel")
