"""Batch coordination: every routing policy returns serial-identical
results in batch order, with per-worker accounting."""

import pytest

from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.csp.solvers import join as join_solver
from repro.csp.solvers.backtracking import Inference, solve_with_stats
from repro.errors import SolverError
from repro.generators.csp_random import random_binary_csp
from repro.generators.graphs import random_digraph
from repro.parallel import Coordinator, Job, worker_reports
from repro.relational.stats import collect_stats

INSTANCES = [random_binary_csp(6, 3, 8, 0.35, seed=s) for s in range(6)]


@pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "hash"])
def test_policies_agree_with_serial(policy):
    serial = [join_solver.is_solvable(i, strategy="greedy") for i in INSTANCES]
    coord = Coordinator(workers=2, policy=policy)
    jobs = [Job("is_solvable", (i, "greedy")) for i in INSTANCES]
    results = coord.run(jobs)
    assert [r.value for r in results] == serial
    assert [r.index for r in results] == list(range(len(jobs)))
    assert sum(t["jobs"] for t in coord.worker_totals.values()) == len(jobs)


def test_solve_jobs_return_serial_solutions_with_search_stats():
    serial = [
        solve_with_stats(i, Inference.MAC, "residual").solution for i in INSTANCES
    ]
    coord = Coordinator(workers=2)
    results = coord.run([Job("solve", (i, "residual")) for i in INSTANCES])
    assert [r.value for r in results] == serial
    assert all(r.search is not None and r.search.nodes >= 0 for r in results)


def test_evaluate_jobs_match_direct_evaluation():
    query = parse_query("Q(X,Z) :- E(X,Y), E(Y,Z).")
    dbs = [random_digraph(12, 0.25, seed=s) for s in range(4)]
    serial = [evaluate(query, db, "greedy") for db in dbs]
    coord = Coordinator(workers=2)
    results = coord.run([Job("evaluate", (query, db, "greedy")) for db in dbs])
    assert [r.value for r in results] == serial


def test_hash_policy_gives_key_affinity():
    coord = Coordinator(workers=2, policy="hash")
    jobs = [
        Job("is_solvable", (INSTANCES[i % 3], "greedy"), key=f"db{i % 3}")
        for i in range(9)
    ]
    results = coord.run(jobs)
    by_key = {}
    for i, r in enumerate(results):
        by_key.setdefault(jobs[i].key, set()).add(r.worker)
    assert all(len(workers) == 1 for workers in by_key.values())


def test_hash_affinity_reuses_warmed_indexes_across_jobs():
    """Jobs sharing a key hit the indexes built by the first job on their
    worker: the worker-side database affinity cache hands every later job
    the same Structure object, whose memoized atom relations carry the
    warmed hash indexes across job boundaries."""
    query = parse_query("Q(X,Z) :- E(X,Y), E(Y,Z).")
    db = random_digraph(14, 0.3, seed=7)
    coord = Coordinator(workers=2, policy="hash")
    jobs = [
        Job("evaluate", (query, db, "greedy"), key="affinity-db")
        for _ in range(5)
    ]
    results = coord.run(jobs)
    expected = evaluate(query, db, "greedy")
    assert all(r.value == expected for r in results)
    # All five jobs landed on one worker...
    assert len({r.worker for r in results}) == 1
    # ...where the first job built the base-relation indexes and every
    # later job probed them, rebuilding only its own intermediates.
    assert results[0].eval_stats.index_builds > 0
    for later in results[1:]:
        assert later.eval_stats.index_builds < results[0].eval_stats.index_builds
        assert later.eval_stats.index_hits > 0


def test_batch_totals_merge_into_ambient_stats():
    with collect_stats() as serial_stats:
        for i in INSTANCES:
            join_solver.is_solvable(i, strategy="greedy")
    coord = Coordinator(workers=2)
    with collect_stats() as batch_stats, worker_reports() as reports:
        coord.run([Job("is_solvable", (i, "greedy")) for i in INSTANCES])
    assert len(reports) == len(INSTANCES)
    assert batch_stats.tuples_emitted == serial_stats.tuples_emitted
    assert batch_stats.tuples_scanned == serial_stats.tuples_scanned
    assert batch_stats.operator_counts == serial_stats.operator_counts


def test_rejects_unknown_policy_and_kind():
    with pytest.raises(SolverError):
        Coordinator(policy="random")
    coord = Coordinator(workers=2)
    with pytest.raises(Exception):
        coord.run([Job("transmogrify", ())])


def test_empty_batch_is_a_no_op():
    coord = Coordinator(workers=2)
    assert coord.run([]) == []
    assert coord.worker_totals == {}
