"""Batch coordination: every routing policy returns serial-identical
results in batch order, with per-worker accounting."""

import pytest

from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.csp.solvers import join as join_solver
from repro.csp.solvers.backtracking import Inference, solve_with_stats
from repro.errors import SolverError
from repro.generators.csp_random import random_binary_csp
from repro.generators.graphs import random_digraph
from repro.parallel import Coordinator, Job, worker_reports
from repro.relational.stats import collect_stats

INSTANCES = [random_binary_csp(6, 3, 8, 0.35, seed=s) for s in range(6)]


@pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "hash"])
def test_policies_agree_with_serial(policy):
    serial = [join_solver.is_solvable(i, strategy="greedy") for i in INSTANCES]
    coord = Coordinator(workers=2, policy=policy)
    jobs = [Job("is_solvable", (i, "greedy")) for i in INSTANCES]
    results = coord.run(jobs)
    assert [r.value for r in results] == serial
    assert [r.index for r in results] == list(range(len(jobs)))
    assert sum(t["jobs"] for t in coord.worker_totals.values()) == len(jobs)


def test_solve_jobs_return_serial_solutions_with_search_stats():
    serial = [
        solve_with_stats(i, Inference.MAC, "residual").solution for i in INSTANCES
    ]
    coord = Coordinator(workers=2)
    results = coord.run([Job("solve", (i, "residual")) for i in INSTANCES])
    assert [r.value for r in results] == serial
    assert all(r.search is not None and r.search.nodes >= 0 for r in results)


def test_evaluate_jobs_match_direct_evaluation():
    query = parse_query("Q(X,Z) :- E(X,Y), E(Y,Z).")
    dbs = [random_digraph(12, 0.25, seed=s) for s in range(4)]
    serial = [evaluate(query, db, "greedy") for db in dbs]
    coord = Coordinator(workers=2)
    results = coord.run([Job("evaluate", (query, db, "greedy")) for db in dbs])
    assert [r.value for r in results] == serial


def test_hash_policy_gives_key_affinity():
    coord = Coordinator(workers=2, policy="hash")
    jobs = [
        Job("is_solvable", (INSTANCES[i % 3], "greedy"), key=f"db{i % 3}")
        for i in range(9)
    ]
    results = coord.run(jobs)
    by_key = {}
    for i, r in enumerate(results):
        by_key.setdefault(jobs[i].key, set()).add(r.worker)
    assert all(len(workers) == 1 for workers in by_key.values())


def test_batch_totals_merge_into_ambient_stats():
    with collect_stats() as serial_stats:
        for i in INSTANCES:
            join_solver.is_solvable(i, strategy="greedy")
    coord = Coordinator(workers=2)
    with collect_stats() as batch_stats, worker_reports() as reports:
        coord.run([Job("is_solvable", (i, "greedy")) for i in INSTANCES])
    assert len(reports) == len(INSTANCES)
    assert batch_stats.tuples_emitted == serial_stats.tuples_emitted
    assert batch_stats.tuples_scanned == serial_stats.tuples_scanned
    assert batch_stats.operator_counts == serial_stats.operator_counts


def test_rejects_unknown_policy_and_kind():
    with pytest.raises(SolverError):
        Coordinator(policy="random")
    coord = Coordinator(workers=2)
    with pytest.raises(Exception):
        coord.run([Job("transmogrify", ())])


def test_empty_batch_is_a_no_op():
    coord = Coordinator(workers=2)
    assert coord.run([]) == []
    assert coord.worker_totals == {}
