"""Pickling discipline: relations, codecs, and column stores round-trip
by value and never drag their memoized derived structures across the
process boundary (the property that keeps shard shipping cheap)."""

import pickle
import random

import pytest

from repro.relational.columnar import ColumnStore, column_store, numpy_backend
from repro.relational.interning import Codec
from repro.relational.relation import Relation


def _rel(n=200, width=20, seed=0):
    rng = random.Random(seed)
    return Relation(
        ("x", "y"), {(rng.randrange(width), rng.randrange(width)) for _ in range(n)}
    )


def test_relation_round_trips_by_value():
    rel = _rel()
    restored = pickle.loads(pickle.dumps(rel))
    assert restored == rel
    assert restored.attributes == rel.attributes
    assert restored.tuples == rel.tuples
    assert hash(restored) == hash(rel)


def test_relation_pickle_drops_memoized_indexes():
    fresh = _rel(seed=1)
    cold = len(pickle.dumps(fresh))
    # Warm every derived structure: hash index, code index, column store.
    fresh.index_on(("y",))
    fresh.code_index_on(("y",))
    column_store(fresh)
    warm = len(pickle.dumps(fresh))
    assert warm == cold, "memoized indexes leaked into the pickle"
    restored = pickle.loads(pickle.dumps(fresh))
    assert not restored.has_index(("y",))
    assert not restored.has_code_index(("y",))
    assert not restored.has_column_store()


def test_relation_pickle_size_regression():
    """Shipping a shard must cost O(tuples): the payload stays within a
    small constant of the raw tuple data."""
    rel = _rel(n=500, width=50, seed=2)
    rel.index_on(("x",))
    rel.code_index_on(("x",))
    column_store(rel)
    payload = len(pickle.dumps(rel))
    raw = len(pickle.dumps((rel.attributes, rel.tuples)))
    assert payload <= raw + 128


def test_restored_relation_rebuilds_indexes_on_demand():
    rel = pickle.loads(pickle.dumps(_rel(seed=3)))
    index = rel.index_on(("y",))
    assert rel.has_index(("y",))
    some_row = next(iter(rel))
    assert some_row in index[(some_row[1],)]


def test_codec_round_trips_bijectively():
    codec = Codec(["b", "a", "c", 7, (1, 2)])
    restored = pickle.loads(pickle.dumps(codec))
    assert restored.values == codec.values
    for value in codec.values:
        assert restored.encode(value) == codec.encode(value)
        assert restored.decode(codec.encode(value)) == value


def test_column_store_round_trips_without_numpy_views():
    rel = _rel(n=100, seed=4)
    store = column_store(rel)
    restored = pickle.loads(pickle.dumps(store))
    assert isinstance(restored, ColumnStore)
    assert restored.attributes == store.attributes
    assert restored.rows == store.rows
    assert restored.nrows == store.nrows
    assert restored.to_relation() == rel
    if numpy_backend() is not None:
        # The lazy numpy matrices must not ship; they rebuild on demand.
        store.np_columns()
        reshipped = pickle.loads(pickle.dumps(store))
        assert reshipped._np_columns is None
        assert reshipped.np_columns() is not None


def test_csp_instance_round_trips():
    from repro.generators.csp_random import random_binary_csp

    inst = random_binary_csp(6, 3, 8, 0.4, seed=5)
    restored = pickle.loads(pickle.dumps(inst))
    assert restored.variables == inst.variables
    assert restored.domain == inst.domain
    assert restored.constraints == inst.constraints
