"""Hash partitioning: shards partition the relation, equal keys co-locate
across operands under a shared codec, and the fold attribute choice is
deterministic."""

import random

import pytest

from repro.parallel.partition import (
    choose_partition_attribute,
    hash_partition,
    partition_codec,
)
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats


def _random_relation(attrs, n, width, seed):
    rng = random.Random(seed)
    return Relation(
        attrs, {tuple(rng.randrange(width) for _ in attrs) for _ in range(n)}
    )


@pytest.mark.parametrize("seed", range(10))
def test_shards_partition_the_relation(seed):
    rel = _random_relation(("x", "y"), 120, 15, seed)
    codec = partition_codec((rel,), ("y",))
    parts = hash_partition(rel, ("y",), 4, codec)
    assert len(parts) == 4
    assert all(p.attributes == rel.attributes for p in parts)
    assert sum(len(p) for p in parts) == len(rel)
    rows = set()
    for p in parts:
        assert rows.isdisjoint(p.tuples)
        rows |= p.tuples
    assert rows == rel.tuples


@pytest.mark.parametrize("seed", range(10))
def test_equal_keys_land_in_equal_shards_across_operands(seed):
    left = _random_relation(("x", "y"), 100, 12, seed)
    right = _random_relation(("y", "z"), 100, 12, seed + 500)
    codec = partition_codec((left, right), ("y",))
    shards = 3
    left_parts = hash_partition(left, ("y",), shards, codec)
    right_parts = hash_partition(right, ("y",), shards, codec)

    def shard_of(parts, key_position, value):
        return {
            i for i, p in enumerate(parts) for row in p if row[key_position] == value
        }

    for value in left.column("y") & right.column("y"):
        left_shards = shard_of(left_parts, 1, value)
        right_shards = shard_of(right_parts, 0, value)
        assert len(left_shards) == 1 and left_shards == right_shards


def test_partition_charges_stats():
    rel = _random_relation(("x",), 50, 9, 3)
    codec = partition_codec((rel,), ("x",))
    with collect_stats() as stats:
        hash_partition(rel, ("x",), 2, codec)
    assert stats.tuples_scanned == len(rel)
    assert stats.partitions == 2
    assert stats.operator_counts.get("partition") == 1


def test_choose_partition_attribute_prefers_most_shared():
    r = Relation(("a", "b"), [(1, 2)])
    s = Relation(("b", "c"), [(2, 3)])
    t = Relation(("b", "d"), [(2, 4)])
    assert choose_partition_attribute((r, s, t)) == "b"


def test_choose_partition_attribute_breaks_ties_alphabetically():
    r = Relation(("a", "b"), [(1, 2)])
    s = Relation(("a", "b"), [(1, 2)])
    assert choose_partition_attribute((r, s)) == "a"


def test_choose_partition_attribute_none_on_disjoint_schemes():
    r = Relation(("a",), [(1,)])
    s = Relation(("b",), [(2,)])
    assert choose_partition_attribute((r, s)) is None
