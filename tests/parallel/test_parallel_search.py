"""Work-stealing parallel MAC search: identical solutions to serial
search, honest task/steal accounting, and working cancellation."""

import pytest

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers.backtracking import (
    Inference,
    SearchStats,
    is_solvable,
    solve_with_stats,
)
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph


@pytest.mark.parametrize("seed", range(12))
def test_parallel_solution_identical_to_serial(seed):
    inst = random_binary_csp(8, 3, 10, 0.4, seed=seed)
    serial = solve_with_stats(inst, Inference.MAC, "residual")
    par = solve_with_stats(inst, Inference.MAC, "residual", workers=2)
    assert par.solution == serial.solution


@pytest.mark.parametrize("strategy", ["residual", "interned", "columnar"])
def test_parallel_solution_identical_across_strategies(strategy):
    inst = coloring_instance(cycle_graph(9), 3)
    serial = solve_with_stats(inst, Inference.MAC, strategy)
    par = solve_with_stats(inst, Inference.MAC, strategy, workers=2)
    assert par.solution == serial.solution
    assert par.solution is not None


def test_unsolvable_instance_refuted_by_all_workers():
    inst = coloring_instance(cycle_graph(9), 2)  # odd cycle, 2 colors
    par = solve_with_stats(inst, Inference.MAC, "residual", workers=2)
    assert par.solution is None
    assert not is_solvable(inst, Inference.MAC, workers=2)


def test_parallel_counters_account_for_the_fan_out():
    inst = random_binary_csp(9, 3, 12, 0.35, seed=42)
    par = solve_with_stats(inst, Inference.MAC, "residual", workers=2)
    assert par.tasks > 0
    assert par.steals >= par.tasks
    assert par.propagation.revisions > 0


def test_single_worker_requests_run_serial():
    inst = coloring_instance(cycle_graph(7), 3)
    serial = solve_with_stats(inst, Inference.MAC, "residual")
    one = solve_with_stats(inst, Inference.MAC, "residual", workers=1)
    assert one.solution == serial.solution
    assert one.tasks == 0 and one.steals == 0


def test_root_fixpoint_refutation_needs_no_workers():
    # x != y over a single shared value: refuted at the root AC pass.
    inst = CSPInstance(
        ("x", "y"), (0,), [Constraint(("x", "y"), [])]
    )
    par = solve_with_stats(inst, Inference.MAC, "residual", workers=4)
    assert par.solution is None
    assert par.tasks == 0


def test_root_fixpoint_singletons_are_the_solution():
    # Unary pins force every variable: the root fixpoint solves it.
    inst = CSPInstance(
        ("x", "y"),
        (0, 1),
        [Constraint(("x",), [(0,)]), Constraint(("y",), [(1,)])],
    )
    par = solve_with_stats(inst, Inference.MAC, "residual", workers=4)
    assert par.solution == {"x": 0, "y": 1}


def test_should_stop_cancels_serial_search():
    """The cancellation hook the parallel plane relies on: a firing
    ``should_stop`` abandons the search with partial counters."""
    inst = random_binary_csp(12, 3, 18, 0.45, seed=7)
    full = solve_with_stats(inst, Inference.MAC, "residual")
    if full.nodes < 128:
        pytest.skip("instance too easy to observe cancellation")
    calls = []

    def stop():
        calls.append(True)
        return True

    cancelled = solve_with_stats(
        inst, Inference.MAC, "residual", should_stop=stop
    )
    assert calls, "should_stop was never polled"
    assert cancelled.solution is None
    assert 0 < cancelled.nodes < full.nodes


def test_search_stats_merge_tracks_tasks_and_steals():
    a = SearchStats(nodes=3, tasks=2, steals=5)
    b = SearchStats(nodes=4, tasks=1, steals=2)
    a.merge(b)
    assert (a.nodes, a.tasks, a.steals) == (7, 3, 7)
    d = a.as_dict()
    assert d["tasks"] == 3 and d["steals"] == 7
    a.reset()
    assert a.tasks == 0 and a.steals == 0
