"""Stats-plane exactness across the process boundary.

Three invariants keep the observability story honest under fan-out:

* **composition** — the parent's collected totals are the merge of every
  worker's shipped counters plus the parent's own partition/gather
  records, and merging is order-insensitive on totals (hypothesis-checked
  over shuffles);
* **trace exactness** — a traced parallel run's JSONL stream reaggregates
  to exactly the in-process totals, same as serial (worker counters merge
  into the parent's installed stats *inside* the open operator span);
* **result exactness** — all of the above while the answers stay
  bit-identical to serial execution on the differential-matrix family.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.propagation import collect_propagation
from repro.csp.solvers.backtracking import Inference, solve_with_stats
from repro.generators.csp_random import random_binary_csp
from repro.parallel import parallel_config, worker_reports
from repro.relational.algebra import join_all, natural_join
from repro.relational.relation import Relation
from repro.relational.stats import EvalStats, collect_stats
from repro.telemetry import dumps, parse_jsonl, reaggregate, tracing


def _rel(attrs, n, width, seed):
    rng = random.Random(seed)
    return Relation(
        attrs, {tuple(rng.randrange(width) for _ in attrs) for _ in range(n)}
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_parent_totals_compose_from_worker_stats(seed):
    left = _rel(("x", "y"), 150, 12, seed)
    right = _rel(("y", "z"), 150, 12, seed + 1)
    with parallel_config(workers=2, threshold=0):
        with collect_stats() as stats, worker_reports() as reports:
            result = natural_join(left, right, execution="parallel")
    assert reports, "no fan-out happened"
    merged = EvalStats()
    for record in reports:
        merged.merge(record.stats)
    # Every worker-side counter is contained in the parent's total; what
    # remains is exactly the parent's partition + codec + gather work.
    for key, value in merged.as_dict().items():
        if isinstance(value, int):
            assert stats.as_dict()[key] >= value
    assert stats.tuples_emitted == merged.tuples_emitted + len(result)
    assert stats.parallel_tasks == len(reports)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), order=st.randoms())
def test_merge_totals_are_order_insensitive(seed, order):
    blocks = []
    for i in range(4):
        with collect_stats() as stats:
            natural_join(
                _rel(("x", "y"), 60, 9, seed + i), _rel(("y", "z"), 60, 9, seed - i)
            )
        blocks.append(stats)
    forward = EvalStats()
    for b in blocks:
        forward.merge(b)
    shuffled = list(blocks)
    order.shuffle(shuffled)
    backward = EvalStats()
    for b in shuffled:
        backward.merge(b)
    fdict, bdict = forward.as_dict(), backward.as_dict()
    # intermediate_sizes is a sequence (order-sensitive by design): compare
    # as multisets; every scalar total must match exactly.
    assert sorted(fdict.pop("intermediate_sizes")) == sorted(
        bdict.pop("intermediate_sizes")
    )
    assert fdict == bdict


def test_traced_parallel_join_reaggregates_exactly():
    rels = [
        _rel(("x", "y"), 120, 10, 1),
        _rel(("y", "z"), 120, 10, 2),
        _rel(("z", "w"), 120, 10, 3),
    ]
    with parallel_config(workers=2, threshold=0):
        with collect_stats() as stats, tracing("parallel-fold") as trace:
            join_all(rels, execution="parallel")
    assert stats.parallel_tasks > 0
    agg = reaggregate(parse_jsonl(dumps(trace).splitlines()))
    rebuilt, collected = agg["eval"].as_dict(), stats.as_dict()
    # Wall-clock accumulates in a different float-summation order through
    # the span deltas, and zero-second entries (operators charged with no
    # timing) are omitted from counter deltas by design; every discrete
    # counter must match exactly.
    rebuilt_seconds = {k: v for k, v in rebuilt.pop("operator_seconds").items() if v}
    collected_seconds = {
        k: v for k, v in collected.pop("operator_seconds").items() if v
    }
    assert rebuilt_seconds == pytest.approx(collected_seconds)
    assert rebuilt == collected


def test_traced_parallel_search_reaggregates_exactly():
    # This instance is known to fan out (root split survives the fixpoint);
    # an instance resolved at the root emits an all-zero counter delta and
    # hence no "search" counter event at all.
    inst = random_binary_csp(9, 3, 12, 0.35, seed=2)
    with collect_propagation() as pstats:
        with tracing("parallel-search") as trace:
            stats = solve_with_stats(inst, Inference.MAC, "residual", workers=2)
    assert stats.tasks > 0, "instance no longer fans out"
    agg = reaggregate(parse_jsonl(dumps(trace).splitlines()))
    rebuilt = agg["search"]
    assert (rebuilt.nodes, rebuilt.backtracks, rebuilt.prunings) == (
        stats.nodes, stats.backtracks, stats.prunings,
    )
    assert (rebuilt.tasks, rebuilt.steals) == (stats.tasks, stats.steals)
    # The merged per-worker propagation published into the ambient collector.
    assert pstats.as_dict() == stats.propagation.as_dict()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_parallel_results_stay_serial_identical_under_collection(seed):
    inst = random_binary_csp(7, 3, 9, 0.4, seed=seed)
    serial = solve_with_stats(inst, Inference.MAC, "residual")
    with collect_stats(), collect_propagation():
        par = solve_with_stats(inst, Inference.MAC, "residual", workers=2)
    assert par.solution == serial.solution
