"""Unit tests for the residual-support propagation core."""

import pytest

from repro.consistency.propagation import (
    PROPAGATION_STRATEGIES,
    PropagationEngine,
    PropagationStats,
    Worklist,
    check_propagation_strategy,
    collect_propagation,
    current_propagation,
    publish,
)
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import SolverError

NE = {(0, 1), (1, 0)}


def chain_instance():
    """x≠y, y≠z over {0,1} — arc consistent with full domains."""
    return CSPInstance(
        ["x", "y", "z"],
        [0, 1],
        [Constraint(("x", "y"), NE), Constraint(("y", "z"), NE)],
    )


class TestStrategyKnob:
    def test_known_strategies(self):
        assert PROPAGATION_STRATEGIES == ("residual", "naive", "interned", "columnar")
        for s in PROPAGATION_STRATEGIES:
            assert check_propagation_strategy(s) == s

    def test_unknown_strategy_raises(self):
        with pytest.raises(SolverError, match="unknown propagation strategy"):
            check_propagation_strategy("ac2001")


class TestWorklist:
    def test_deduplicates_on_push(self):
        wl = Worklist([1, 2, 1, 2, 3])
        assert len(wl) == 3

    def test_fifo_order(self):
        wl = Worklist([1, 2, 3])
        assert [wl.pop(), wl.pop(), wl.pop()] == [1, 2, 3]

    def test_push_reports_whether_enqueued(self):
        wl = Worklist()
        assert wl.push("a") is True
        assert wl.push("a") is False
        wl.pop()
        assert wl.push("a") is True  # re-entry after pop is allowed

    def test_contains_and_bool(self):
        wl = Worklist()
        assert not wl
        wl.push(7)
        assert wl and 7 in wl
        wl.pop()
        assert 7 not in wl


class TestPropagationStats:
    def test_merge_is_componentwise_sum(self):
        a = PropagationStats(revisions=1, support_checks=2, support_hits=1)
        b = PropagationStats(revisions=10, trail_restores=3, wipeouts=1)
        a.merge(b)
        assert a.revisions == 11
        assert a.support_checks == 2
        assert a.trail_restores == 3
        assert a.wipeouts == 1

    def test_reset_zeroes_everything(self):
        s = PropagationStats(revisions=5, support_checks=9, support_hits=4)
        s.reset()
        assert s.as_dict() == PropagationStats().as_dict()

    def test_hit_rate(self):
        assert PropagationStats().hit_rate == 0.0
        assert PropagationStats(support_checks=4, support_hits=1).hit_rate == 0.25

    def test_summary_mentions_all_counters(self):
        text = PropagationStats(support_checks=3, support_hits=3).summary()
        for word in ("revisions", "support checks", "hits", "restores", "wipeouts"):
            assert word in text


class TestCollectPropagation:
    def test_engines_publish_into_active_block(self):
        from repro.consistency.arc import ac3

        with collect_propagation() as stats:
            ac3(chain_instance())
        assert stats.revisions > 0
        assert stats.support_checks > 0

    def test_nested_blocks_shadow(self):
        from repro.consistency.arc import ac3

        with collect_propagation() as outer:
            with collect_propagation() as inner:
                ac3(chain_instance())
        assert inner.revisions > 0
        assert outer.revisions == 0

    def test_no_block_means_no_active_stats(self):
        assert current_propagation() is None

    def test_publish_merges_and_returns(self):
        s = PropagationStats(revisions=2)
        with collect_propagation() as active:
            assert publish(s) is s
        assert active.revisions == 2

    def test_publish_of_active_object_does_not_double_count(self):
        with collect_propagation() as active:
            active.revisions = 3
            publish(active)
        assert active.revisions == 3


class TestPropagationEngine:
    def test_full_propagation_reaches_ac_fixpoint(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1, 2],
            [Constraint(("x", "y"), {(0, 1), (1, 2)}), Constraint(("y",), [(2,)])],
        )
        engine = PropagationEngine(inst)
        domains = engine.fresh_domains()
        stats = PropagationStats()
        assert engine.propagate(domains, engine.full_worklist(), stats)
        assert domains["x"] == {1}
        assert domains["y"] == {2}

    def test_wipeout_returns_false_and_counts(self):
        inst = CSPInstance(
            ["x", "y"], [0, 1], [Constraint(("x", "y"), {(0, 0)}),
                                 Constraint(("x",), [(1,)])]
        )
        engine = PropagationEngine(inst)
        domains = engine.fresh_domains()
        stats = PropagationStats()
        assert not engine.propagate(domains, engine.full_worklist(), stats)
        assert stats.wipeouts == 1

    def test_trail_records_deletions_and_restore_round_trips(self):
        engine = PropagationEngine(chain_instance())
        domains = engine.fresh_domains()
        stats = PropagationStats()
        trail = [("x", domains["x"] - {0})]
        domains["x"] = {0}
        assert engine.propagate(
            domains, engine.arcs_from(["x"]), stats, trail=trail
        )
        assert domains["y"] == {1} and domains["z"] == {0}
        engine.restore(domains, trail, stats)
        assert not trail
        assert all(domains[v] == {0, 1} for v in ("x", "y", "z"))
        assert stats.trail_restores == 3  # x's 1 back, y's 0 back, z's 1 back

    def test_residual_supports_hit_on_repeat_propagation(self):
        engine = PropagationEngine(chain_instance())
        first = PropagationStats()
        engine.propagate(engine.fresh_domains(), engine.full_worklist(), first)
        second = PropagationStats()
        engine.propagate(engine.fresh_domains(), engine.full_worklist(), second)
        # Supports stored during the first pass answer the second pass:
        # every check is a stored-row re-verification, none was on pass one.
        assert first.support_hits == 0
        assert second.support_hits == second.support_checks > 0

    def test_arcs_from_excludes_changed_and_skipped(self):
        engine = PropagationEngine(chain_instance())
        arcs = engine.arcs_from(["y"], skip={"z"})
        targets = set()
        while arcs:
            _rc, v = arcs.pop()
            targets.add(v)
        assert targets == {"x"}
