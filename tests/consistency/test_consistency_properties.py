"""Property-based tests (hypothesis) for the consistency algorithms.

Two contracts matter for everything built on top of §5 of the tutorial:

* **Soundness** — a filtering algorithm may only remove values that occur
  in *no* solution.  AC-3 (and its singleton refinement) must never prune
  a value some solution uses, and a refutation must mean the instance is
  genuinely unsolvable (checked against the brute-force oracle).
* **Strong path consistency** — :func:`path_consistency` interleaves PC-2
  with arc tightening, so its output must be arc-consistent on arrival:
  running AC-3 on the result is a no-op.  It must also preserve the exact
  solution set, not merely solvability.
"""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.consistency.arc import ac3, path_consistency
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute

MAX_VARS = 4
MAX_DOMAIN = 3


@st.composite
def binary_instances(draw):
    """Small random CSP instances with unary and binary constraints —
    the fragment path consistency is exact for."""
    n = draw(st.integers(min_value=2, max_value=MAX_VARS))
    d = draw(st.integers(min_value=2, max_value=MAX_DOMAIN))
    variables = list(range(n))
    domain = list(range(d))
    n_constraints = draw(st.integers(min_value=1, max_value=5))
    constraints = []
    for _ in range(n_constraints):
        arity = draw(st.integers(min_value=1, max_value=2))
        scope = tuple(
            draw(st.permutations(variables).map(lambda p: p[:arity]))
        )
        all_rows = sorted(product(domain, repeat=arity))
        rows = draw(st.sets(st.sampled_from(all_rows), max_size=len(all_rows)))
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, domain, constraints)


def solution_set(instance):
    return {tuple(sorted(s.items())) for s in brute.all_solutions(instance)}


@settings(max_examples=80, deadline=None)
@given(binary_instances())
def test_ac3_never_removes_a_solution_value(instance):
    result = ac3(instance)
    solutions = list(brute.all_solutions(instance))
    if solutions:
        assert result.consistent, "AC-3 refuted a solvable instance"
        for solution in solutions:
            for variable, value in solution.items():
                assert value in result.domains[variable]


@settings(max_examples=80, deadline=None)
@given(binary_instances())
def test_ac3_refutation_is_sound(instance):
    if not ac3(instance).consistent:
        assert not brute.is_solvable(instance)


@settings(max_examples=60, deadline=None)
@given(binary_instances())
def test_path_consistency_output_is_arc_consistent(instance):
    out = path_consistency(instance)
    if out is None:
        assert not brute.is_solvable(instance)
        return
    result = ac3(out)
    assert result.consistent
    # AC-3 on the output is a no-op: the filtered domains coincide with the
    # domains the output's unary constraints already imply.
    implied = {v: set(out.domain) for v in out.variables}
    for c in out.constraints:
        if c.arity == 1:
            implied[c.scope[0]] &= {row[0] for row in c.relation}
    for variable in out.variables:
        assert result.domains[variable] == implied[variable]


@settings(max_examples=60, deadline=None)
@given(binary_instances())
def test_path_consistency_preserves_solution_set(instance):
    out = path_consistency(instance)
    if out is None:
        assert not brute.is_solvable(instance)
    else:
        assert solution_set(out) == solution_set(instance)


@settings(max_examples=80, deadline=None)
@given(binary_instances())
def test_residual_and_naive_strategies_coincide(instance):
    """The two propagation strategies are observationally identical: same
    verdicts always, same fixpoint domains when consistent.  Hypothesis
    shrinks any divergence to a minimal counterexample."""
    from repro.consistency.arc import singleton_arc_consistency

    ac_naive = ac3(instance, strategy="naive")
    ac_res = ac3(instance, strategy="residual")
    assert ac_naive.consistent == ac_res.consistent
    if ac_naive.consistent:
        assert ac_naive.domains == ac_res.domains

    sac_naive = singleton_arc_consistency(instance, strategy="naive")
    sac_res = singleton_arc_consistency(instance, strategy="residual")
    assert sac_naive.consistent == sac_res.consistent
    if sac_naive.consistent:
        assert sac_naive.domains == sac_res.domains


@settings(max_examples=60, deadline=None)
@given(binary_instances())
def test_path_consistency_strategies_same_verdict(instance):
    naive = path_consistency(instance, strategy="naive")
    residual = path_consistency(instance, strategy="residual")
    assert (naive is None) == (residual is None)
    if naive is not None:
        assert solution_set(naive) == solution_set(residual)


@settings(max_examples=60, deadline=None)
@given(binary_instances())
def test_path_consistency_domains_shrink_only(instance):
    """The output's unary-implied domains are subsets of the input's —
    tightening never invents values."""
    out = path_consistency(instance)
    if out is None:
        return
    before = {v: set(instance.domain) for v in instance.variables}
    for c in instance.normalize().constraints:
        if c.arity == 1:
            before[c.scope[0]] &= {row[0] for row in c.relation}
    after = {v: set(out.domain) for v in out.variables}
    for c in out.constraints:
        if c.arity == 1:
            after[c.scope[0]] &= {row[0] for row in c.relation}
    for variable in instance.variables:
        assert after[variable] <= before[variable]
