"""Arc and path consistency."""

import pytest

from repro.consistency.arc import ac3, enforce_arc_consistency, path_consistency
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph, path_graph

NE = {(0, 1), (1, 0)}


class TestAC3:
    def test_filters_unsupported_values(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1, 2],
            [Constraint(("x", "y"), {(0, 1), (1, 2)}), Constraint(("y",), [(2,)])],
        )
        result = ac3(inst)
        assert result.consistent
        assert result.domains["y"] == {2}
        assert result.domains["x"] == {1}

    def test_detects_wipeout(self):
        inst = CSPInstance(
            ["x"],
            [0, 1],
            [Constraint(("x",), [(0,)]), Constraint(("x",), [(1,)])],
        )
        # Normalization intersects the two unary constraints to ∅.
        assert not ac3(inst).consistent

    def test_soundness_never_removes_solution_values(self):
        for seed in range(10):
            inst = random_binary_csp(4, 3, 5, 0.4, seed=seed)
            result = ac3(inst)
            for solution in brute.all_solutions(inst):
                if not result.consistent:
                    # wipeout must mean no solutions at all
                    raise AssertionError("AC-3 wiped out a solvable instance")
                for v, value in solution.items():
                    assert value in result.domains[v]

    def test_arc_consistent_instance_unchanged(self):
        inst = coloring_instance(cycle_graph(4), 2)
        result = ac3(inst)
        assert result.consistent
        assert all(len(d) == 2 for d in result.domains.values())

    def test_ternary_constraints_supported(self):
        rows = {(0, 0, 1), (1, 1, 0)}
        inst = CSPInstance(["x", "y", "z"], [0, 1], [Constraint(("x", "y", "z"), rows)])
        result = ac3(inst)
        assert result.consistent
        assert result.domains["x"] == {0, 1}


class TestStrategies:
    def test_unknown_strategy_raises(self):
        from repro.errors import SolverError

        inst = coloring_instance(cycle_graph(4), 2)
        with pytest.raises(SolverError, match="unknown propagation strategy"):
            ac3(inst, strategy="bogus")

    def test_result_carries_stats(self):
        inst = coloring_instance(cycle_graph(4), 2)
        for strategy in ("residual", "naive"):
            result = ac3(inst, strategy=strategy)
            assert result.stats is not None
            assert result.revisions == result.stats.revisions > 0

    def test_residual_records_hits_naive_does_not(self):
        from repro.consistency.arc import singleton_arc_consistency

        inst = coloring_instance(cycle_graph(5), 3)
        assert singleton_arc_consistency(inst, strategy="residual").stats.support_hits > 0
        assert singleton_arc_consistency(inst, strategy="naive").stats.support_hits == 0

    def test_strategies_agree_on_fixture_family(self):
        for seed in range(10):
            inst = random_binary_csp(4, 3, 5, 0.5, seed=seed)
            naive = ac3(inst, strategy="naive")
            residual = ac3(inst, strategy="residual")
            assert naive.consistent == residual.consistent
            if naive.consistent:
                assert naive.domains == residual.domains


class TestEnforce:
    def test_returns_none_on_wipeout(self):
        inst = CSPInstance(["x"], [0], [Constraint(("x",), [])])
        assert enforce_arc_consistency(inst) is None

    def test_equivalent_filtered_instance(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1, 2],
            [Constraint(("x", "y"), {(0, 1), (1, 2)}), Constraint(("y",), [(2,)])],
        )
        filtered = enforce_arc_consistency(inst)
        assert filtered is not None
        assert brute.count_solutions(filtered) == brute.count_solutions(inst)


class TestPathConsistency:
    def test_refutes_triangle_2col(self):
        inst = coloring_instance(cycle_graph(3), 2)
        assert path_consistency(inst) is None

    def test_keeps_solvable_instances(self):
        inst = coloring_instance(path_graph(4), 2)
        out = path_consistency(inst)
        assert out is not None
        assert brute.is_solvable(out)

    def test_tightens_transitive_information(self):
        eq = {(0, 0), (1, 1)}
        inst = CSPInstance(
            ["x", "y", "z"],
            [0, 1],
            [Constraint(("x", "y"), eq), Constraint(("y", "z"), eq)],
        )
        out = path_consistency(inst)
        assert out is not None
        xz = next(
            c for c in out.constraints if set(c.scope) == {"x", "z"} and c.arity == 2
        )
        assert xz.relation == frozenset(eq) or xz.relation <= frozenset(
            {(0, 0), (1, 1)}
        )

    def test_preserves_solution_set(self):
        for seed in range(8):
            inst = random_binary_csp(4, 2, 4, 0.5, seed=seed)
            out = path_consistency(inst)
            if out is None:
                assert not brute.is_solvable(inst)
            else:
                before = {tuple(sorted(s.items())) for s in brute.all_solutions(inst)}
                after = {tuple(sorted(s.items())) for s in brute.all_solutions(out)}
                assert before == after


class TestSingletonArcConsistency:
    def test_refutes_odd_cycle_where_ac_cannot(self):
        from repro.consistency.arc import singleton_arc_consistency

        inst = coloring_instance(cycle_graph(5), 2)
        assert ac3(inst).consistent  # plain AC is blind to the odd cycle
        assert not singleton_arc_consistency(inst).consistent

    def test_keeps_solvable_instances(self):
        from repro.consistency.arc import singleton_arc_consistency

        inst = coloring_instance(cycle_graph(6), 2)
        result = singleton_arc_consistency(inst)
        assert result.consistent
        assert all(len(d) == 2 for d in result.domains.values())

    def test_never_removes_solution_values(self):
        from repro.consistency.arc import singleton_arc_consistency

        for seed in range(8):
            inst = random_binary_csp(4, 2, 4, 0.45, seed=seed)
            result = singleton_arc_consistency(inst)
            for solution in brute.all_solutions(inst):
                assert result.consistent
                for v, value in solution.items():
                    assert value in result.domains[v]

    def test_stronger_than_ac(self):
        from repro.consistency.arc import singleton_arc_consistency

        for seed in range(6):
            inst = random_binary_csp(4, 2, 5, 0.55, seed=seed)
            ac_result = ac3(inst)
            sac_result = singleton_arc_consistency(inst)
            if not ac_result.consistent:
                assert not sac_result.consistent
            elif sac_result.consistent:
                for v in inst.variables:
                    assert sac_result.domains[v] <= ac_result.domains[v]
