"""Local consistency (Definitions 5.2, Proposition 5.3)."""

import pytest

from repro.consistency.local import (
    is_i_consistent,
    is_i_consistent_via_homomorphisms,
    is_strongly_k_consistent,
    is_strongly_k_consistent_via_game,
    partial_solutions_on,
)
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import DomainError
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph, path_graph

NE = {(0, 1), (1, 0)}


def triangle_2col():
    return coloring_instance(cycle_graph(3), 2)


class TestPartialSolutions:
    def test_enumerates_consistent_assignments(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), NE)])
        sols = partial_solutions_on(inst, ("x", "y"))
        assert len(sols) == 2

    def test_ignores_uncovered_constraints(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), NE)])
        sols = partial_solutions_on(inst, ("x",))
        assert len(sols) == 2  # constraint not fully inside {x}


class TestIConsistency:
    def test_i_must_be_positive(self):
        with pytest.raises(DomainError):
            is_i_consistent(triangle_2col(), 0)

    def test_triangle_is_2_consistent(self):
        # Any single-variable assignment extends to any second variable.
        assert is_i_consistent(triangle_2col(), 2)

    def test_triangle_not_3_consistent(self):
        # x=0, y=1 cannot extend to z: z must differ from both colors.
        assert not is_i_consistent(triangle_2col(), 3)

    def test_even_cycle_2col_not_3_consistent(self):
        # On C4, opposite vertices are unconstrained pairwise but x=0, y=1
        # on non-adjacent vertices cannot extend to their common neighbor.
        inst = coloring_instance(cycle_graph(4), 2)
        assert not is_i_consistent(inst, 3)

    def test_i_larger_than_variables_vacuous(self):
        inst = CSPInstance(["x"], [0], [])
        assert is_i_consistent(inst, 5)


class TestStrongKConsistency:
    def test_triangle_strong_2_not_3(self):
        assert is_strongly_k_consistent(triangle_2col(), 2)
        assert not is_strongly_k_consistent(triangle_2col(), 3)

    def test_unsatisfiable_unary_not_1_consistent(self):
        inst = CSPInstance(["x"], [0, 1], [Constraint(("x",), [])])
        assert not is_i_consistent(inst, 1)
        assert not is_strongly_k_consistent(inst, 1)

    def test_complete_relation_always_consistent(self):
        full = {(a, b) for a in (0, 1) for b in (0, 1)}
        inst = CSPInstance(["x", "y", "z"], [0, 1], [Constraint(("x", "y"), full)])
        for k in (1, 2, 3):
            assert is_strongly_k_consistent(inst, k)


class TestProposition53:
    """The definitional checks coincide with the game-theoretic ones."""

    @pytest.mark.parametrize("i", [1, 2, 3])
    def test_i_consistency_via_homomorphisms_on_triangle(self, i):
        inst = triangle_2col()
        assert is_i_consistent(inst, i) == is_i_consistent_via_homomorphisms(inst, i)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_strong_k_via_game_on_triangle(self, k):
        inst = triangle_2col()
        assert is_strongly_k_consistent(inst, k) == is_strongly_k_consistent_via_game(
            inst, k
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_random_instances(self, seed):
        inst = random_binary_csp(4, 2, 4, 0.4, seed=seed)
        for k in (1, 2):
            assert is_strongly_k_consistent(inst, k) == (
                is_strongly_k_consistent_via_game(inst, k)
            )
        for i in (2, 3):
            assert is_i_consistent(inst, i) == is_i_consistent_via_homomorphisms(
                inst, i
            )

    def test_path_instances(self):
        inst = coloring_instance(path_graph(4), 2)
        # Paths are 2-colorable; strong 2-consistency holds.
        assert is_strongly_k_consistent(inst, 2)
        assert is_strongly_k_consistent_via_game(inst, 2)
