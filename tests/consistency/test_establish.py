"""Establishing strong k-consistency — Theorem 5.6 end to end."""

import pytest

from repro.consistency.establish import (
    can_establish,
    check_establishes,
    establish_strong_k_consistency,
    establishment_csp,
    is_coherent,
)
from repro.consistency.local import is_strongly_k_consistent
from repro.csp.convert import csp_to_homomorphism, homomorphism_to_csp
from repro.errors import UnsatisfiableError
from repro.games.pebble import duplicator_wins
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import cycle_graph, path_graph, random_digraph


def sym_structure_pair(n_cycle, colors):
    inst = coloring_instance(cycle_graph(n_cycle), colors)
    return csp_to_homomorphism(inst)


class TestCanEstablish:
    def test_matches_game_winner(self):
        a, b = sym_structure_pair(3, 2)
        assert can_establish(a, b, 2) == duplicator_wins(a, b, 2)
        assert can_establish(a, b, 3) == duplicator_wins(a, b, 3)

    def test_spoiler_win_raises_in_establishment(self):
        a, b = sym_structure_pair(3, 2)
        with pytest.raises(UnsatisfiableError):
            establishment_csp(a, b, 3)  # Spoiler wins with 3 pebbles


class TestTheorem56:
    @pytest.mark.parametrize("n,colors,k", [(4, 2, 2), (3, 3, 2), (5, 3, 2)])
    def test_procedure_establishes(self, n, colors, k):
        a, b = sym_structure_pair(n, colors)
        a_prime, b_prime = establish_strong_k_consistency(a, b, k)
        assert check_establishes(a, b, a_prime, b_prime, k)

    def test_establishment_instance_is_strongly_k_consistent(self):
        a, b = sym_structure_pair(4, 2)
        instance = establishment_csp(a, b, 2)
        assert is_strongly_k_consistent(instance, 2)

    def test_result_is_coherent(self):
        a, b = sym_structure_pair(4, 2)
        a_prime, b_prime = establish_strong_k_consistency(a, b, 2)
        assert is_coherent(a_prime, b_prime)

    def test_largest_coherent_property(self):
        """Every coherent establishing instance's constraints are contained
        in the R_ā constraints of the canonical one (spot check: the
        original instance's own relations, made coherent, are inside)."""
        a, b = sym_structure_pair(4, 2)
        from repro.games.pebble import solve_game

        game = solve_game(a, b, 2)
        inst = establishment_csp(a, b, 2, game)
        by_scope = {c.scope: c.relation for c in inst.constraints}
        # The winning strategy respects the original constraints: for each
        # original A-tuple, R_ā ⊆ R^B.
        original = homomorphism_to_csp(a, b)
        for c in original.normalize().constraints:
            if c.scope in by_scope:
                assert by_scope[c.scope] <= c.relation

    def test_preserves_total_homomorphisms(self):
        from itertools import product

        from repro.relational.homomorphism import is_homomorphism

        a, b = sym_structure_pair(4, 2)
        a_prime, b_prime = establish_strong_k_consistency(a, b, 2)
        a_elems = sorted(a.domain, key=repr)
        for image in product(sorted(b.domain, key=repr), repeat=len(a_elems)):
            h = dict(zip(a_elems, image))
            assert is_homomorphism(h, a, b) == is_homomorphism(h, a_prime, b_prime)


class TestCoherence:
    def test_original_instance_may_be_incoherent(self):
        # A pair where some B-tuple row is not a partial homomorphism.
        from repro.relational.structure import Structure

        a = Structure({"E": 2, "F": 2}, [0, 1], {"E": [(0, 1)], "F": [(0, 1)]})
        b = Structure({"E": 2, "F": 2}, [0, 1], {"E": [(0, 1)], "F": [(1, 0)]})
        # Constraint (0,1)->E^B allows (0,1) but F also constrains (0,1):
        # h = {0:0, 1:1} violates F, so the E-row (0,1) is not a partial hom.
        assert not is_coherent(a, b)

    def test_established_pair_is_coherent_on_random_inputs(self):
        for seed in range(5):
            a = random_digraph(3, 0.5, seed=seed)
            b = random_digraph(3, 0.7, seed=seed + 10)
            if not a.relation("E") or not b.relation("E"):
                continue
            if can_establish(a, b, 2):
                a_prime, b_prime = establish_strong_k_consistency(a, b, 2)
                assert is_coherent(a_prime, b_prime)
                assert check_establishes(a, b, a_prime, b_prime, 2)
