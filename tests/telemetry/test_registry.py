"""The metrics registry: one protocol over EvalStats / PropagationStats /
SearchStats, plus the log-scale timing histogram."""

import math

import pytest

from repro.consistency.propagation import PropagationStats
from repro.csp.solvers.backtracking import SearchStats
from repro.errors import TelemetryError
from repro.relational.stats import EvalStats
from repro.telemetry import (
    METRICSET_KINDS,
    TimingHistogram,
    counter_delta,
    flatten,
    from_counters,
    kind_of,
    merge_counters,
    metric_names,
    metricset_class,
    payload,
    snapshot,
)


def test_every_kind_resolves_both_ways():
    for kind in METRICSET_KINDS:
        cls = metricset_class(kind)
        assert kind_of(cls()) == kind


def test_unknown_kind_and_unregistered_instance_raise():
    with pytest.raises(TelemetryError):
        metricset_class("nope")
    with pytest.raises(TelemetryError):
        kind_of(object())


def test_payload_is_as_dict_plus_kind_tag():
    stats = EvalStats()
    stats.tuples_scanned = 7
    p = payload(stats)
    assert p["metricset"] == "eval"
    assert p["tuples_scanned"] == 7
    assert set(stats.as_dict()) <= set(p)


def test_counter_delta_scalars_dicts_and_list_suffixes():
    stats = EvalStats()
    stats.tuples_scanned = 3
    stats.intermediate_sizes.append(10)
    stats.operator_counts["natural_join"] = 1
    before = snapshot(stats)
    stats.tuples_scanned = 8
    stats.intermediate_sizes.append(20)
    stats.operator_counts["natural_join"] = 4
    stats.operator_counts["project"] = 2
    delta = counter_delta(stats, before)
    assert delta["tuples_scanned"] == 5
    assert delta["intermediate_sizes"] == [20]
    assert delta["operator_counts"] == {"natural_join": 3, "project": 2}
    # Untouched counters are omitted entirely.
    assert "hash_probes" not in delta
    assert counter_delta(stats, snapshot(stats)) == {}


def test_from_counters_ignores_derived_keys():
    stats = from_counters("eval", {"tuples_scanned": 4, "joins": 99, "hit_rate": 0.5})
    assert stats.tuples_scanned == 4
    # "joins" / "hit_rate" are derived by as_dict(), not settable fields —
    # they recompute from the real counters.
    assert stats.as_dict()["tuples_scanned"] == 4


def test_merge_counters_folds_with_the_dataclass_merge():
    total = merge_counters(
        "propagation",
        [{"revisions": 2, "support_checks": 5}, {"revisions": 1, "wipeouts": 1}],
    )
    assert isinstance(total, PropagationStats)
    assert total.revisions == 3
    assert total.support_checks == 5
    assert total.wipeouts == 1


def test_search_stats_non_counter_fields_are_excluded():
    stats = SearchStats()
    stats.solution = {"x": 1}
    stats.nodes = 4
    snap = snapshot(stats)
    assert "solution" not in snap and "propagation" not in snap
    stats.nodes = 9
    stats.solution = {"x": 2}
    assert counter_delta(stats, snap) == {"nodes": 5}
    rebuilt = from_counters("search", {"nodes": 5, "solution": {"x": 1}})
    assert rebuilt.nodes == 5 and rebuilt.solution is None


def test_metric_names_are_namespaced_by_kind():
    names = metric_names("eval")
    assert "eval.tuples_scanned" in names
    assert all(n.startswith("eval.") for n in names)
    assert "propagation.revisions" in metric_names("propagation")
    assert "search.nodes" in metric_names("search")


def test_flatten_keeps_scalars_only():
    stats = EvalStats()
    stats.tuples_scanned = 5
    stats.intermediate_sizes.append(3)
    flat = flatten(stats)
    assert flat["eval.tuples_scanned"] == 5
    assert "eval.intermediate_sizes" not in flat
    assert all(isinstance(v, (int, float)) for v in flat.values())


class TestTimingHistogram:
    def test_exact_aggregates(self):
        h = TimingHistogram()
        for s in (0.001, 0.002, 0.1):
            h.observe(s)
        assert h.count == 3
        assert h.total_seconds == pytest.approx(0.103)
        assert h.min_seconds == 0.001
        assert h.max_seconds == 0.1
        assert h.mean_seconds == pytest.approx(0.103 / 3)

    def test_power_of_two_buckets(self):
        h = TimingHistogram()
        h.observe(0.75)  # [2^-1, 2^0)
        h.observe(0.3)  # [2^-2, 2^-1)
        h.observe(0.26)
        assert h.buckets == {-1: 1, -2: 2}

    def test_sub_microsecond_clamps_into_the_lowest_bucket(self):
        h = TimingHistogram()
        h.observe(0.0)
        h.observe(1e-12)
        assert h.buckets == {TimingHistogram.MIN_EXP: 2}

    def test_merge_is_counterwise(self):
        a, b = TimingHistogram(), TimingHistogram()
        a.observe(0.3)
        b.observe(0.3)
        b.observe(0.001)
        a.merge(b)
        assert a.count == 3
        assert a.buckets[-2] == 2
        assert a.min_seconds == 0.001

    def test_quantile_bounds(self):
        h = TimingHistogram()
        for _ in range(99):
            h.observe(0.001)
        h.observe(1.5)
        assert h.quantile(0.5) <= 0.002048
        assert h.quantile(1.0) == 1.5
        assert TimingHistogram().quantile(0.5) == 0.0

    def test_dict_round_trip(self):
        h = TimingHistogram()
        for s in (0.004, 0.03, 2.0):
            h.observe(s)
        back = TimingHistogram.from_dict(h.as_dict())
        assert back.as_dict() == h.as_dict()
        assert back.buckets == h.buckets

    def test_empty_round_trip(self):
        back = TimingHistogram.from_dict(TimingHistogram().as_dict())
        assert back.count == 0
        assert back.min_seconds == math.inf
