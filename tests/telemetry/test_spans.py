"""Span scoping: nesting, shadowing, thread isolation, explicit trace
reuse, zero-cost-off, and counter attribution."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.relational.algebra import natural_join
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats
from repro.telemetry import (
    Trace,
    current_span,
    current_trace,
    span,
    tracing,
)
from repro.telemetry.spans import _NULL_SPAN


def _r(attrs, rows):
    return Relation(attrs, rows)


def test_span_is_a_shared_falsy_noop_when_tracing_is_off():
    assert current_trace() is None
    sp = span("anything", x=1)
    assert sp is _NULL_SPAN
    assert not sp
    # All protocol methods are no-ops.
    sp.note(rows=3)
    sp.add_counters("eval", {"tuples_scanned": 1})
    with sp:
        pass
    sp.close()


def test_spans_nest_into_a_tree():
    with tracing("root") as trace:
        with span("a") as a:
            with span("b") as b:
                assert current_span() is b
            with span("c") as c:
                pass
    root = trace.roots[0]
    assert [s.name for s in trace.spans] == ["root", "a", "b", "c"]
    assert a.parent_id == root.id
    assert b.parent_id == a.parent_id + 1 == a.id
    assert [child.name for child in a.children] == ["b", "c"]
    assert (root.depth, a.depth, b.depth, c.depth) == (0, 1, 2, 2)
    assert trace.duration == root.duration > 0
    assert a.duration >= b.duration + c.duration


def test_nested_tracing_shadows_the_outer_trace():
    with tracing("outer") as outer:
        with span("before"):
            pass
        with tracing("inner") as inner:
            assert current_trace() is inner
            with span("shadowed"):
                pass
        assert current_trace() is outer
        with span("after"):
            pass
    assert [s.name for s in inner.spans] == ["inner", "shadowed"]
    assert [s.name for s in outer.spans] == ["outer", "before", "after"]
    assert outer.find("shadowed") == []


def test_explicit_trace_reuse_accumulates_roots():
    trace = Trace("accumulated")
    with tracing("first", trace=trace):
        with span("x"):
            pass
    with tracing("second", trace=trace):
        with span("y"):
            pass
    assert [r.name for r in trace.roots] == ["first", "second"]
    assert trace.duration == sum(r.duration for r in trace.roots)
    assert len(trace.find("x")) == len(trace.find("y")) == 1


def test_threads_never_share_a_trace():
    results = {}

    def worker(key):
        assert current_trace() is None  # nothing leaks across threads
        with tracing(key) as trace:
            with span(f"{key}-child"):
                pass
            results[key] = trace

    threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
    with tracing("main") as main_trace:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with span("main-child"):
            pass
    for key, trace in results.items():
        assert [s.name for s in trace.spans] == [key, f"{key}-child"]
    assert [s.name for s in main_trace.spans] == ["main", "main-child"]


def test_out_of_order_close_raises():
    with tracing() as trace:
        a = span("a")
        b = span("b")
        with pytest.raises(TelemetryError, match="closed out of order"):
            a.close()
        # Recover so the tracing contextmanager can unwind cleanly.
        b.close()
        a.close()
    assert trace.find("a")[0].t1 is not None


def test_automatic_eval_counter_capture_is_inclusive():
    left = _r(("x", "y"), {(i, i + 1) for i in range(20)})
    right = _r(("y", "z"), {(i, i * 2) for i in range(20)})
    with collect_stats() as stats:
        with tracing("t") as trace:
            with span("outer"):
                natural_join(left, right)
    joined = trace.find("natural_join")[0]
    outer = trace.find("outer")[0]
    assert joined.counters["eval"]["tuples_scanned"] > 0
    # Inclusive capture: the parent charges everything its child did.
    assert outer.counters["eval"]["tuples_scanned"] >= (
        joined.counters["eval"]["tuples_scanned"]
    )
    # Topmost-span merge equals the in-process totals exactly.
    assert trace.total_counters("eval").as_dict() == stats.as_dict()


def test_explicit_counters_suppress_automatic_capture():
    left = _r(("x", "y"), {(1, 2), (2, 3)})
    right = _r(("y", "z"), {(2, 4)})
    with collect_stats():
        with tracing() as trace:
            with span("phase") as sp:
                natural_join(left, right)
                sp.add_counters("eval", {"tuples_scanned": 1000})
    phase = trace.find("phase")[0]
    # The explicit block wins outright — no merge with the live delta.
    assert phase.counters["eval"] == {"tuples_scanned": 1000}


def test_add_counters_merges_repeated_blocks():
    with tracing() as trace:
        with span("batch") as sp:
            sp.add_counters("search", {"nodes": 2, "sizes": [1], "by": {"a": 1}})
            sp.add_counters("search", {"nodes": 3, "sizes": [2], "by": {"a": 1, "b": 4}})
    assert trace.find("batch")[0].counters["search"] == {
        "nodes": 5,
        "sizes": [1, 2],
        "by": {"a": 2, "b": 4},
    }


def test_histograms_aggregate_per_span_name():
    with tracing() as trace:
        for _ in range(5):
            with span("op"):
                pass
    hist = trace.histograms["op"]
    assert hist.count == 5
    assert hist.total_seconds <= trace.find("op")[-1].t1


def test_note_overwrites_and_extends_attributes():
    with tracing() as trace:
        with span("s", execution="indexed") as sp:
            sp.note(rows=3)
            sp.note(rows=4, extra="yes")
    attrs = trace.find("s")[0].attributes
    assert attrs == {"execution": "indexed", "rows": 4, "extra": "yes"}
