"""The EXPLAIN-ANALYZE renderer and the acceptance criterion: on a traced
triangle workload the child durations account for >90% of the root."""

from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.generators.graphs import random_digraph
from repro.relational.stats import collect_stats
from repro.telemetry import QueryProfile, format_seconds, tracing


def _triangle_profile(seed=0):
    query = parse_query("Q(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X).")
    db = random_digraph(25, 0.2, seed=seed)
    with collect_stats():
        with tracing("triangle") as trace:
            evaluate(query, db, strategy="auto")
    return QueryProfile(trace)


def test_format_seconds_tiers():
    assert format_seconds(2.5) == "2.50s"
    assert format_seconds(0.0018) == "1.8ms"
    assert format_seconds(4.5e-5) == "45us"
    assert format_seconds(3e-8) == "30ns"
    assert format_seconds(0.0) == "0us"


def test_triangle_operator_durations_cover_the_root():
    """Per-operator durations sum to within 10% of the root span's wall
    clock — the profiler accounts for where the time went."""
    profile = _triangle_profile()
    assert profile.coverage() > 0.9
    # And nothing is counted beyond the root.
    assert profile.coverage() <= 1.0 + 1e-9


def test_rows_walk_the_tree_in_preorder_with_percentages():
    profile = _triangle_profile()
    rows = profile.rows()
    assert rows[0]["name"] == "triangle" and rows[0]["depth"] == 0
    names = [r["name"] for r in rows]
    assert names.index("cq.evaluate") < names.index("route")
    assert names.index("route") < names.index("leapfrog_join")
    root_pct = rows[0]["percent"]
    assert abs(root_pct - 100.0) < 1e-6
    assert all(0.0 <= r["percent"] <= root_pct + 1e-9 for r in rows)
    by_name = {r["name"]: r for r in rows}
    assert by_name["route"]["attrs"]["route"] == "wcoj"
    assert by_name["cq.evaluate"]["rows"] is not None


def test_operator_table_is_sorted_by_total_time():
    table = _triangle_profile().operator_table()
    totals = [r["total_seconds"] for r in table]
    assert totals == sorted(totals, reverse=True)
    assert {r["operator"] for r in table} >= {"cq.evaluate", "leapfrog_join"}
    assert all(r["calls"] >= 1 for r in table)


def test_counter_totals_are_namespaced_and_nonzero():
    totals = _triangle_profile().counter_totals()
    assert totals["eval"]["eval.tuples_scanned"] > 0


def test_render_contains_tree_table_and_counters():
    text = _triangle_profile().render()
    assert "trace: triangle" in text
    assert "  cq.evaluate" in text  # indented child
    assert "leapfrog_join" in text
    assert "route=wcoj" in text
    assert "per-operator totals" in text
    assert "eval counters" in text
    assert "eval.tuples_scanned" in text
    assert "route=wcoj" in text
    no_counters = _triangle_profile().render(counters=False)
    assert "eval counters" not in no_counters


def test_coverage_degenerate_cases():
    from repro.telemetry import Trace

    # No roots at all: vacuously covered.
    assert QueryProfile(Trace("empty")).coverage() == 1.0
    # A root with no children accounts for none of its own wall clock.
    with tracing("leaf-only") as trace:
        pass
    assert QueryProfile(trace).coverage() == 0.0
