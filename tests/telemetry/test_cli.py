"""The profile/trace CLI subcommands and the payload-shaped stats --json."""

import json

import pytest

import repro.__main__ as cli
from repro.telemetry import parse_jsonl, reaggregate


@pytest.mark.parametrize(
    "workload", ["triangle", "join", "datalog", "propagation", "search"]
)
def test_profile_renders_every_workload(workload, capsys):
    cli.main(["profile", "--workload", workload])
    out = capsys.readouterr().out
    assert f"trace: profile:{workload}" in out
    assert "per-operator totals" in out


def test_profile_triangle_shows_the_wcoj_route(capsys):
    cli.main(["profile", "--workload", "triangle"])
    out = capsys.readouterr().out
    assert "leapfrog_join" in out
    assert "route=wcoj" in out
    assert "eval counters" in out


def test_profile_jsonl_stream_parses_and_reaggregates(capsys):
    cli.main(["profile", "--workload", "join", "--jsonl"])
    lines = capsys.readouterr().out.splitlines()
    events = parse_jsonl(lines)
    assert events[0]["attrs"]["trace"] == "profile:join"
    agg = reaggregate(events)
    assert agg["eval"].as_dict()["tuples_scanned"] > 0
    # The acyclic chain routed through Yannakakis, and said so.
    (decision,) = agg["eval"].routing_decisions
    assert decision["route"] == "yannakakis" and decision["acyclic"] is True


def test_trace_always_emits_jsonl(capsys):
    cli.main(["trace", "--workload", "triangle"])
    events = parse_jsonl(capsys.readouterr().out.splitlines())
    assert any(
        e.get("type") == "span_open" and e.get("name") == "leapfrog_join"
        for e in events
    )


def test_profile_out_writes_a_file(tmp_path, capsys):
    out_file = tmp_path / "trace.jsonl"
    cli.main(["profile", "--workload", "propagation", "--jsonl", "--out", str(out_file)])
    events = parse_jsonl(out_file.read_text().splitlines())
    agg = reaggregate(events)
    assert agg["propagation"].revisions > 0
    # stdout stays clean (the note goes to stderr).
    assert capsys.readouterr().out == ""


def test_stats_json_carries_the_metricset_tag(capsys):
    cli.main(["stats", "--workload", "chain", "--strategies", "greedy", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["greedy"]["metricset"] == "eval"
    assert payload["greedy"]["joins"] > 0


def test_stats_workers_appends_per_worker_breakdown(capsys):
    cli.main(
        ["stats", "--workload", "e1", "--strategies", "parallel",
         "--workers", "2"]
    )
    out = capsys.readouterr().out
    assert "per-worker breakdown (2 workers" in out
    # One row per pid with a positive task count.
    rows = [l for l in out.splitlines() if l.split("|")[0].strip().isdigit()]
    assert rows and all(int(r.split("|")[1]) > 0 for r in rows)


def test_profile_search_workers_shows_steal_accounting(capsys):
    cli.main(["profile", "--workload", "search", "--workers", "2"])
    out = capsys.readouterr().out
    assert "work-stealing parallel MAC search" in out
    assert "search.steals" in out
    assert "per-worker breakdown (2 workers" in out


def test_profile_join_workers_routes_to_parallel_execution(capsys):
    cli.main(["profile", "--workload", "join", "--workers", "2"])
    out = capsys.readouterr().out
    assert "hash-sharded joins across 2 workers" in out
    assert "per-worker breakdown" in out


def test_propagation_stats_json_carries_the_metricset_tag(capsys):
    cli.main(
        ["stats", "--workload", "propagation", "--strategies", "residual", "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["residual"]["metricset"] == "propagation"
    assert payload["residual"]["revisions"] > 0
    assert payload["residual"]["seconds"] >= 0
