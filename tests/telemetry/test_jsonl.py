"""JSONL export: emit → parse → reaggregate equals the in-process totals
exactly, and the validator catches malformed streams."""

import io
import json

import pytest

from repro.consistency.arc import ac3
from repro.consistency.propagation import collect_propagation
from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.errors import TelemetryError
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import cycle_graph, random_digraph
from repro.relational.stats import collect_stats
from repro.telemetry import (
    dumps,
    parse_jsonl,
    reaggregate,
    reaggregate_histograms,
    trace_events,
    tracing,
    validate_events,
    write_jsonl,
)


def _traced_triangle(seed=0):
    """A traced auto-routed (cyclic → wcoj) triangle query; returns the
    (trace, in-process EvalStats) pair."""
    query = parse_query("Q(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X).")
    db = random_digraph(20, 0.2, seed=seed)
    with collect_stats() as stats:
        with tracing("triangle") as trace:
            evaluate(query, db, strategy="auto")
    return trace, stats


def test_event_stream_shape():
    trace, _ = _traced_triangle()
    events = list(trace_events(trace))
    assert events[0]["type"] == "span_open"
    assert events[0]["parent"] is None
    assert events[0]["attrs"]["trace"] == "triangle"
    assert events[0]["attrs"]["wall_start"] == trace.wall_start
    assert events[-1]["type"] == "span_close"
    assert {e["type"] for e in events} == {"span_open", "counter", "span_close"}
    assert validate_events(events) == []


def test_round_trip_reaggregates_to_exact_eval_totals():
    trace, stats = _traced_triangle()
    agg = reaggregate(parse_jsonl(dumps(trace).splitlines()))
    assert agg["eval"].as_dict() == stats.as_dict()


def test_round_trip_reaggregates_propagation_totals():
    with collect_propagation() as stats:
        with tracing("prop") as trace:
            ac3(coloring_instance(cycle_graph(9), 3))
            ac3(coloring_instance(cycle_graph(9), 2))
    agg = reaggregate(parse_jsonl(dumps(trace).splitlines()))
    assert agg["propagation"].as_dict() == stats.as_dict()


def test_round_trip_reaggregates_search_counters():
    from repro.csp.solvers.backtracking import Inference, solve_with_stats

    with tracing("search") as trace:
        stats = solve_with_stats(coloring_instance(cycle_graph(9), 3), Inference.MAC)
    agg = reaggregate(parse_jsonl(dumps(trace).splitlines()))
    rebuilt = agg["search"]
    assert stats.nodes > 0
    assert (rebuilt.nodes, rebuilt.backtracks, rebuilt.prunings) == (
        stats.nodes, stats.backtracks, stats.prunings,
    )


def test_concatenated_streams_merge():
    """Two independent traces concatenate into one stream whose totals are
    the sum — the cross-process contract."""
    t1, s1 = _traced_triangle(seed=1)
    t2, s2 = _traced_triangle(seed=2)
    events = list(trace_events(t1)) + list(trace_events(t2))
    agg = reaggregate(events)
    expected = type(s1)()
    expected.merge(s1)
    expected.merge(s2)
    assert agg["eval"].as_dict() == expected.as_dict()


def test_reaggregated_histograms_match_in_process():
    trace, _ = _traced_triangle()
    hists = reaggregate_histograms(parse_jsonl(dumps(trace).splitlines()))
    assert set(hists) == set(trace.histograms)
    for name, hist in hists.items():
        assert hist.count == trace.histograms[name].count
        assert hist.total_seconds == pytest.approx(
            trace.histograms[name].total_seconds
        )


def test_write_jsonl_counts_events(tmp_path):
    trace, _ = _traced_triangle()
    buf = io.StringIO()
    n = write_jsonl(trace, buf)
    lines = buf.getvalue().splitlines()
    assert len(lines) == n == len(list(trace_events(trace)))
    assert parse_jsonl(lines)


def test_parse_rejects_invalid_json():
    with pytest.raises(TelemetryError, match="line 2: not valid JSON"):
        parse_jsonl(['{"type": "span_open"}', "{nope"])


def test_validator_catches_schema_violations():
    def open_(i, parent=None):
        return {"type": "span_open", "id": i, "parent": parent,
                "name": f"s{i}", "t": 0.0, "attrs": {}}

    def close(i):
        return {"type": "span_close", "id": i, "t": 1.0, "duration": 1.0}

    assert validate_events([open_(0), open_(1, 0), close(1), close(0)]) == []
    # Out-of-order close (not LIFO).
    assert any(
        "out of order" in p
        for p in validate_events([open_(0), open_(1, 0), close(0), close(1)])
    )
    # Never closed.
    assert any("never closed" in p for p in validate_events([open_(0)]))
    # Closed twice.
    assert any(
        "closed twice" in p for p in validate_events([open_(0), close(0), close(0)])
    )
    # Unknown parent.
    assert any("unknown parent" in p for p in validate_events([open_(1, 7), close(1)]))
    # Counter for an unopened span / unknown metricset.
    problems = validate_events(
        [open_(0),
         {"type": "counter", "id": 5, "metricset": "eval", "counters": {}},
         {"type": "counter", "id": 0, "metricset": "bogus", "counters": {}},
         close(0)]
    )
    assert any("not open" in p for p in problems)
    assert any("unknown metricset" in p for p in problems)
    # Unknown event type.
    assert any(
        "unknown event type" in p
        for p in validate_events([{"type": "mystery"}])
    )


def test_parse_rejects_invalid_streams():
    stream = json.dumps(
        {"type": "span_close", "id": 9, "t": 0.0, "duration": 0.0}
    )
    with pytest.raises(TelemetryError, match="invalid trace stream"):
        parse_jsonl([stream])
