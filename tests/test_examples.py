"""Smoke tests: every example script runs to completion (their internal
assertions double as integration checks), and the module tour works."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 5


def test_module_tour_runs(capsys):
    import repro.__main__ as cli

    cli.main([])
    out = capsys.readouterr().out
    assert "PODS" in out
    assert "[§7]" in out


def test_stats_subcommand_runs(capsys):
    import repro.__main__ as cli

    cli.main(["stats", "--workload", "coloring", "--strategies", "greedy", "textbook"])
    out = capsys.readouterr().out
    assert "greedy" in out and "textbook" in out
    assert "max-inter" in out


def test_stats_subcommand_json(capsys):
    import json

    import repro.__main__ as cli

    cli.main(["stats", "--workload", "chain", "--strategies", "greedy", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"greedy"}
    assert payload["greedy"]["joins"] > 0
    assert payload["greedy"]["max_intermediate"] >= 1
