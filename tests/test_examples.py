"""Smoke tests: every example script runs to completion (their internal
assertions double as integration checks), and the module tour works."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 5


def test_module_tour_runs(capsys):
    import repro.__main__ as tour

    tour.main()
    out = capsys.readouterr().out
    assert "PODS" in out
    assert "[§7]" in out
