"""Differential testing of the cost-guided join planner.

The planner chooses a join *order* and an *execution* (hash-indexed
build/probe versus nested-loop scan); since the natural join is commutative
and associative and both executions implement the same operator, every
order+execution combination must compute the identical relation.  This
suite checks that on ~200 randomly generated instances:

* conjunctive queries evaluated with the greedy plan, the cardinality sort,
  the textbook (textual) order, and the indexed/scan executions return
  exactly the same relation;
* Boolean CSP verdicts from the planned join solver agree with the
  brute-force oracle for every strategy and execution.
"""

import pytest

from repro.csp.solvers import brute, join
from repro.cq.evaluate import evaluate, evaluate_boolean
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph, path_graph, random_digraph
from repro.generators.queries import chain_query, random_query, star_query
from repro.relational.planner import EXECUTIONS, STRATEGIES

# 120 CQ cases (seeds × head arities) + 81 CSP cases (seeds × tightness)
# + the fixed structured families = ~210 generated instances.
CQ_SEEDS = range(60)
CSP_SEEDS = range(27)

# Every spec the planner accepts: bare orders, bare executions, and the
# compound order+execution forms.  EXECUTIONS includes "interned", so the
# code-space fast path rides the whole matrix automatically.
ALL_SPECS = (
    list(STRATEGIES)
    + list(EXECUTIONS)
    + [f"{order}+{execution}" for order in STRATEGIES for execution in EXECUTIONS]
)

# CQ evaluation additionally accepts "auto" (Yannakakis on acyclic bodies);
# the planner proper rejects it, so it only joins the CQ-level sweeps.
CQ_SPECS = ALL_SPECS + ["auto"]


@pytest.mark.parametrize("head_arity", [0, 2])
@pytest.mark.parametrize("seed", CQ_SEEDS)
def test_random_cq_strategies_agree(seed, head_arity):
    query = random_query(
        n_atoms=2 + seed % 4,
        n_variables=2 + seed % 4,
        seed=seed,
        head_arity=head_arity,
    )
    database = random_digraph(4 + seed % 4, 0.4, seed=seed)
    results = {s: evaluate(query, database, strategy=s) for s in CQ_SPECS}
    assert len(set(results.values())) == 1


@pytest.mark.parametrize("builder", [lambda: chain_query(5), lambda: star_query(4)])
def test_structured_cq_strategies_agree(builder):
    query = builder()
    for seed in range(5):
        database = random_digraph(6, 0.35, seed=seed)
        results = {s: evaluate(query, database, strategy=s) for s in CQ_SPECS}
        assert len(set(results.values())) == 1


@pytest.mark.parametrize("seed", CQ_SEEDS)
def test_boolean_cq_strategies_agree(seed):
    query = random_query(n_atoms=3 + seed % 3, n_variables=3, seed=1000 + seed)
    database = random_digraph(5, 0.3, seed=seed)
    verdicts = {evaluate_boolean(query, database, strategy=s) for s in CQ_SPECS}
    assert len(verdicts) == 1


@pytest.mark.parametrize("tightness", [0.2, 0.45, 0.7])
@pytest.mark.parametrize("seed", CSP_SEEDS)
def test_csp_join_agrees_with_bruteforce(seed, tightness):
    instance = random_binary_csp(
        n_variables=4 + seed % 3,
        domain_size=2 + seed % 2,
        n_constraints=3 + seed % 5,
        tightness=tightness,
        seed=seed,
    )
    expected = brute.is_solvable(instance)
    for strategy in ALL_SPECS:
        assert join.is_solvable(instance, strategy=strategy) == expected


@pytest.mark.parametrize("colors,expected", [(2, False), (3, True)])
def test_coloring_csp_all_strategies(colors, expected):
    instance = coloring_instance(cycle_graph(7), colors)
    assert brute.is_solvable(instance) == expected
    for strategy in ALL_SPECS:
        assert join.is_solvable(instance, strategy=strategy) == expected
    path = coloring_instance(path_graph(6), 2)
    for strategy in ALL_SPECS:
        assert join.is_solvable(path, strategy=strategy) is True


def test_cyclic_bodies_all_strategies_agree():
    """Explicitly cyclic bodies — triangle, 4-cycle, and a chorded cycle —
    where ``"auto"`` routes to the leapfrog triejoin rather than
    Yannakakis.  Every spec (wcoj included) must return the same relation."""
    from repro.cq.query import Atom, ConjunctiveQuery, Var

    x, y, z, w = Var("x"), Var("y"), Var("z"), Var("w")
    cyclic_queries = [
        ConjunctiveQuery(
            "Q", (x, y, z),
            [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))],
        ),
        ConjunctiveQuery(
            "Q", (),
            [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, w)),
             Atom("E", (w, x))],
        ),
        ConjunctiveQuery(
            "Q", (x, z),
            [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x)),
             Atom("E", (x, z))],
        ),
    ]
    for seed in range(6):
        database = random_digraph(6, 0.4, seed=seed)
        for query in cyclic_queries:
            results = {s: evaluate(query, database, strategy=s) for s in CQ_SPECS}
            assert len(set(results.values())) == 1, f"seed {seed}, {query!r}"
            verdicts = {
                evaluate_boolean(query, database, strategy=s) for s in CQ_SPECS
            }
            assert len(verdicts) == 1, f"seed {seed}, {query!r}"


def test_empty_relation_bodies_all_strategies_agree():
    """An atom over an empty relation empties the whole join under every
    spec — including wcoj's early exit and auto's cyclic route."""
    from repro.cq.query import Atom, ConjunctiveQuery, Var
    from repro.relational.structure import Structure

    x, y, z = Var("x"), Var("y"), Var("z")
    database = Structure(
        {"E": 2, "F": 2}, range(4),
        {"E": [(0, 1), (1, 2), (2, 0)], "F": []},
    )
    queries = [
        ConjunctiveQuery("Q", (x, y), [Atom("E", (x, y)), Atom("F", (y, z))]),
        ConjunctiveQuery(
            "Q", (),
            [Atom("E", (x, y)), Atom("E", (y, z)), Atom("F", (z, x))],
        ),
    ]
    for query in queries:
        for s in CQ_SPECS:
            assert len(evaluate(query, database, strategy=s)) == 0, s
            assert evaluate_boolean(query, database, strategy=s) is False, s


def test_single_tuple_bodies_all_strategies_agree():
    """Single-tuple relations: the join either chains to exactly one row or
    to none, identically under every spec."""
    from repro.cq.query import Atom, ConjunctiveQuery, Var
    from repro.relational.structure import Structure

    x, y, z = Var("x"), Var("y"), Var("z")
    query = ConjunctiveQuery(
        "Q", (x, z), [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))]
    )
    hit = Structure({"E": 2}, range(3), {"E": [(0, 0)]})
    miss = Structure({"E": 2}, range(3), {"E": [(0, 1)]})
    for s in CQ_SPECS:
        assert evaluate(query, hit, strategy=s).tuples == {(0, 0)}, s
        assert len(evaluate(query, miss, strategy=s)) == 0, s
        assert evaluate_boolean(query, hit, strategy=s) is True, s
        assert evaluate_boolean(query, miss, strategy=s) is False, s


def test_full_join_relation_identical_across_strategies():
    """Not just the verdict: the full joined relation matches per strategy."""
    for seed in range(10):
        instance = random_binary_csp(
            n_variables=5, domain_size=3, n_constraints=6, tightness=0.4, seed=seed
        )
        joined = {
            s: join.join_of_constraints(instance, strategy=s) for s in ALL_SPECS
        }
        base = joined["textbook"]
        for s in ALL_SPECS:
            assert set(joined[s].attributes) == set(base.attributes)
            # Compare as sets of attribute→value mappings (column order may
            # legitimately differ between plans).
            canon = lambda rel: {
                frozenset(zip(rel.attributes, t)) for t in rel.tuples
            }
            assert canon(joined[s]) == canon(base)
