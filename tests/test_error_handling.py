"""Failure-injection tests: every public entry point rejects bad input with
the library's own exception types (never a bare KeyError/TypeError leak)."""

import pytest

from repro.errors import (
    ArityError,
    DecompositionError,
    DomainError,
    ParseError,
    ReproError,
    SchemaError,
    SolverError,
    UnsatisfiableError,
    VocabularyError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            ArityError,
            VocabularyError,
            DomainError,
            ParseError,
            DecompositionError,
            UnsatisfiableError,
            SolverError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestRelationalRejections:
    def test_relation_bad_scheme(self):
        from repro.relational import Relation

        with pytest.raises(SchemaError):
            Relation(("x", "x"), [])

    def test_unknown_attribute_lookup(self):
        from repro.relational import Relation

        r = Relation(("x", "y"), [(1, 2)])
        with pytest.raises(VocabularyError) as exc:
            r.index_of("ghost")
        # The message names both the missing attribute and the scheme.
        assert "'ghost'" in str(exc.value)
        assert "('x', 'y')" in str(exc.value)
        with pytest.raises(VocabularyError):
            r.index_on(("x", "ghost"))

    def test_unknown_strategy_spec(self):
        from repro.relational import Relation
        from repro.relational.algebra import join_all

        with pytest.raises(SolverError):
            join_all([Relation(("x",), [(1,)])], strategy="quantum")
        with pytest.raises(SolverError):
            join_all([Relation(("x",), [(1,)])], strategy="greedy+greedy")

    def test_structure_value_outside_domain(self):
        from repro.relational import Structure

        with pytest.raises(DomainError):
            Structure({"E": 2}, [0], {"E": [(0, 1)]})

    def test_homomorphism_vocabulary_mismatch(self):
        from repro.relational import Structure, homomorphism_exists

        a = Structure({"E": 2}, [0], {})
        b = Structure({"F": 2}, [0], {})
        with pytest.raises(VocabularyError):
            homomorphism_exists(a, b)

    def test_sum_structure_vocabulary_mismatch(self):
        from repro.relational import Structure, sum_structure

        with pytest.raises(VocabularyError):
            sum_structure(Structure({"E": 2}, [0], {}), Structure({"F": 1}, [0], {}))


class TestCSPRejections:
    def test_unknown_scope_variable(self):
        from repro.csp import Constraint, CSPInstance

        with pytest.raises(DomainError):
            CSPInstance(["x"], [0], [Constraint(("ghost",), [(0,)])])

    def test_constraint_arity_mismatch(self):
        from repro.csp import Constraint

        with pytest.raises(ArityError):
            Constraint(("x", "y"), [(0,)])


class TestParserRejections:
    @pytest.mark.parametrize(
        "text",
        [
            "Q(X :- E(X).",
            "Q(X) :- E(X",
            "Q(X) :- E(X) E(Y).",
            ":- E(X).",
        ],
    )
    def test_cq_parser(self, text):
        from repro.cq import parse_query

        with pytest.raises(ParseError):
            parse_query(text)

    @pytest.mark.parametrize("text", ["P(X) :-", "P(X) :- Q(X,"])
    def test_datalog_parser(self, text):
        from repro.datalog import parse_program

        with pytest.raises(ParseError):
            parse_program(text, goal="P")

    # "a |" is deliberately lenient (empty alternative = ε), so not listed.
    @pytest.mark.parametrize("text", ["(a", "a)", "*"])
    def test_regex_parser(self, text):
        from repro.views import parse_regex
        from repro.errors import ParseError as PE

        with pytest.raises(PE):
            parse_regex(text)


class TestGameRejections:
    def test_nonpositive_k(self):
        from repro.games import solve_game
        from repro.relational import Structure

        s = Structure({"E": 2}, [0], {})
        with pytest.raises(DomainError):
            solve_game(s, s, 0)

    def test_lfp_nonpositive_k(self):
        from repro.games import bad_configurations
        from repro.relational import Structure

        s = Structure({"E": 2}, [0], {})
        with pytest.raises(DomainError):
            bad_configurations(s, s, 0)


class TestWidthRejections:
    def test_tree_decomposition_cycle(self):
        from repro.width import TreeDecomposition

        with pytest.raises(DecompositionError):
            TreeDecomposition({0: {1}, 1: {1}, 2: {1}}, [(0, 1), (1, 2), (2, 0)])

    def test_join_tree_of_cyclic_hypergraph(self):
        from repro.width import join_tree

        with pytest.raises(DecompositionError):
            join_tree([frozenset("ab"), frozenset("bc"), frozenset("ca")])

    def test_elimination_order_must_cover(self):
        from repro.width import Graph, from_elimination_order

        with pytest.raises(DecompositionError):
            from_elimination_order(Graph(vertices=[0, 1]), [0])

    def test_empty_graph_decomposition(self):
        from repro.width import Graph, heuristic_decomposition

        with pytest.raises(DecompositionError):
            heuristic_decomposition(Graph())


class TestDichotomyRejections:
    def test_schaefer_needs_boolean(self):
        from repro.dichotomy import classify
        from repro.relational import Structure

        with pytest.raises(DomainError):
            classify(Structure({"R": 1}, [0, 2], {"R": [(2,)]}))

    def test_horn_sat_rejects_non_horn(self):
        from repro.dichotomy import CNF, horn_sat

        with pytest.raises(DomainError):
            horn_sat(CNF([(1, 2)]))

    def test_two_sat_rejects_wide_clause(self):
        from repro.dichotomy import CNF, two_sat

        with pytest.raises(DomainError):
            two_sat(CNF([(1, 2, 3)]))

    def test_coset_composite_modulus(self):
        from repro.dichotomy import is_coset_relation

        with pytest.raises(DomainError):
            is_coset_relation({(0,)}, 6)


class TestViewRejections:
    def test_template_size_guard(self):
        from repro.views import ViewSetup, constraint_template

        vs = ViewSetup({"V": "a"})
        with pytest.raises(SolverError):
            constraint_template(" ".join(["a"] * 25), vs)

    def test_reduction_needs_digraphs(self):
        from repro.relational import Structure
        from repro.views import csp_to_view_reduction

        with pytest.raises(DomainError):
            csp_to_view_reduction(Structure({"R": 3}, [0], {}))

    def test_graphdb_label_type(self):
        from repro.views import GraphDatabase

        with pytest.raises(DomainError):
            GraphDatabase(edges=[("x", 5, "y")])

    def test_dfa_completeness(self):
        from repro.views import DFA

        with pytest.raises(DomainError):
            DFA({0}, {"a"}, {}, 0, set())

    def test_solver_error_on_big_datalog_rewriting(self):
        from repro.views import ViewSetup, datalog_rewriting

        vs = ViewSetup({"V1": "a", "V2": "b"})
        with pytest.raises(SolverError):
            datalog_rewriting("a b", vs, max_sets=20)
