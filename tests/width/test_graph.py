"""The minimal Graph type, cross-checked against networkx where useful."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.graphs import complete_graph, cycle_graph, grid_graph, path_graph
from repro.width.graph import Graph


class TestBasics:
    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.vertices == frozenset({1, 2})
        assert g.has_edge(2, 1)

    def test_self_loops_ignored(self):
        g = Graph()
        g.add_edge(1, 1)
        assert g.num_edges() == 0
        assert 1 in g.vertices

    def test_remove_vertex(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_vertex(2)
        assert g.vertices == frozenset({1, 3})
        assert g.num_edges() == 0

    def test_degree_and_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.neighbors(1) == frozenset({2, 3})

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert g.num_edges() == 1

    def test_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        sub = g.subgraph([1, 2])
        assert sub.num_edges() == 1


class TestAlgorithms:
    def test_connected_components(self):
        g = Graph(vertices=[5], edges=[(1, 2), (3, 4)])
        comps = {frozenset(c) for c in g.connected_components()}
        assert comps == {frozenset({1, 2}), frozenset({3, 4}), frozenset({5})}

    def test_is_connected(self):
        assert path_graph(5).is_connected()
        assert not Graph(vertices=[1, 2]).is_connected()
        assert Graph().is_connected()  # vacuous

    def test_bipartite_cycles(self):
        assert cycle_graph(4).is_bipartite()
        assert not cycle_graph(5).is_bipartite()

    def test_bipartition_is_proper(self):
        parts = cycle_graph(6).bipartition()
        assert parts is not None
        left, right = parts
        g = cycle_graph(6)
        for u, v in g.edges():
            assert (u in left) != (v in left)

    def test_is_tree(self):
        assert path_graph(4).is_tree()
        assert not cycle_graph(4).is_tree()
        assert not Graph(vertices=[1, 2]).is_tree()  # disconnected
        assert Graph().is_tree()

    def test_grid_structure(self):
        g = grid_graph(3, 3)
        assert g.num_vertices() == 9
        assert g.num_edges() == 12

    def test_complete_graph_edges(self):
        assert complete_graph(5).num_edges() == 10


edge_sets = st.sets(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] != e[1]),
    max_size=15,
)


@settings(max_examples=50, deadline=None)
@given(edge_sets)
def test_bipartiteness_matches_networkx(edges):
    g = Graph(vertices=range(7), edges=edges)
    ng = nx.Graph()
    ng.add_nodes_from(range(7))
    ng.add_edges_from(edges)
    assert g.is_bipartite() == nx.is_bipartite(ng)


@settings(max_examples=50, deadline=None)
@given(edge_sets)
def test_components_match_networkx(edges):
    g = Graph(vertices=range(7), edges=edges)
    ng = nx.Graph()
    ng.add_nodes_from(range(7))
    ng.add_edges_from(edges)
    ours = {frozenset(c) for c in g.connected_components()}
    theirs = {frozenset(c) for c in nx.connected_components(ng)}
    assert ours == theirs
