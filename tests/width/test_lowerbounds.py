"""Treewidth lower bounds sandwich the exact value."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
)
from repro.width.graph import Graph
from repro.width.lowerbounds import (
    clique_lower_bound,
    clique_number,
    degeneracy,
    mmd_plus_lower_bound,
    treewidth_lower_bound,
)
from repro.width.treedecomp import treewidth_exact, treewidth_upper_bound


class TestDegeneracy:
    def test_known_values(self):
        assert degeneracy(path_graph(5)) == 1
        assert degeneracy(cycle_graph(5)) == 2
        assert degeneracy(complete_graph(4)) == 3
        assert degeneracy(grid_graph(3, 3)) == 2
        assert degeneracy(Graph()) == 0

    def test_isolated_vertices(self):
        assert degeneracy(Graph(vertices=[1, 2, 3])) == 0


class TestCliqueNumber:
    def test_known_values(self):
        assert clique_number(complete_graph(5)) == 5
        assert clique_number(cycle_graph(5)) == 2
        assert clique_number(path_graph(1)) == 1
        assert clique_number(Graph()) == 0

    def test_planted_clique(self):
        g = random_graph(10, 0.2, seed=3)
        for u in range(4):
            for v in range(u + 1, 4):
                g.add_edge(u, v)
        assert clique_number(g) >= 4

    def test_greedy_path_is_a_lower_bound(self):
        g = random_graph(12, 0.5, seed=1)
        exact = clique_number(g, exact_limit=25)
        greedy = clique_number(g, exact_limit=5)
        assert greedy <= exact


class TestBoundsSandwich:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(6), cycle_graph(6), complete_graph(5), grid_graph(3, 3)],
        ids=["path", "cycle", "clique", "grid"],
    )
    def test_named_graphs(self, graph):
        exact = treewidth_exact(graph)
        assert treewidth_lower_bound(graph) <= exact <= treewidth_upper_bound(graph)

    def test_clique_bound_tight_on_cliques(self):
        assert clique_lower_bound(complete_graph(6)) == 5
        assert treewidth_lower_bound(complete_graph(6)) == 5

    def test_mmd_plus_dominates_on_grids(self):
        g = grid_graph(4, 4)
        assert mmd_plus_lower_bound(g) >= degeneracy(g)


edge_sets = st.sets(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] != e[1]),
    max_size=14,
)


@settings(max_examples=40, deadline=None)
@given(edge_sets)
def test_lower_bound_never_exceeds_exact(edges):
    g = Graph(vertices=range(7), edges=edges)
    assert treewidth_lower_bound(g) <= treewidth_exact(g)


@settings(max_examples=40, deadline=None)
@given(edge_sets)
def test_individual_bounds_valid(edges):
    g = Graph(vertices=range(7), edges=edges)
    exact = treewidth_exact(g)
    assert degeneracy(g) <= exact
    assert clique_lower_bound(g) <= exact
    assert mmd_plus_lower_bound(g) <= exact
