"""Hypertree-width and querywidth bounds — the Section 6 width comparison."""

import pytest

from repro.csp.instance import Constraint, CSPInstance
from repro.errors import DecompositionError
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import complete_graph, cycle_graph, path_graph
from repro.width.hypertree import (
    hypertree_width_interval,
    hypertree_width_lower_bound,
    hypertree_width_upper_bound,
    instance_hypertree_interval,
    minimum_edge_cover,
)
from repro.width.querywidth import (
    incidence_treewidth,
    query_width_interval,
    query_width_upper_bound,
)


def H(*edge_sets):
    return [frozenset(e) for e in edge_sets]


class TestMinimumEdgeCover:
    def test_single_edge_covers(self):
        assert minimum_edge_cover(frozenset("ab"), H("ab", "cd")) == [0]

    def test_needs_two(self):
        cover = minimum_edge_cover(frozenset("abc"), H("ab", "bc"))
        assert cover is not None and len(cover) == 2

    def test_uncoverable(self):
        assert minimum_edge_cover(frozenset("az"), H("ab")) is None

    def test_prefers_smaller(self):
        cover = minimum_edge_cover(frozenset("abc"), H("ab", "bc", "abc"))
        assert cover is not None and len(cover) == 1


class TestHypertreeWidth:
    def test_acyclic_is_width_one(self):
        assert hypertree_width_interval(H("ab", "bc", "cd")) == (1, 1)

    def test_triangle_of_edges_is_two(self):
        lower, upper = hypertree_width_interval(H("ab", "bc", "ca"))
        assert (lower, upper) == (2, 2)

    def test_cycle_hypergraph(self):
        edges = [frozenset({i, (i + 1) % 6}) for i in range(6)]
        lower, upper = hypertree_width_interval(edges)
        assert lower == 2
        assert upper <= 3

    def test_decomposition_certificate_valid(self):
        hd = hypertree_width_upper_bound(H("ab", "bc", "ca"))
        assert hd.is_valid()
        assert hd.width == 2

    def test_empty_hyperedges_rejected(self):
        with pytest.raises(DecompositionError):
            hypertree_width_upper_bound([frozenset()])

    def test_lower_bound_values(self):
        assert hypertree_width_lower_bound(H("ab")) == 1
        assert hypertree_width_lower_bound(H("ab", "bc", "ca")) == 2
        assert hypertree_width_lower_bound([]) == 0

    def test_clique_from_big_hyperedge_is_one(self):
        """The signature hypertree-width fact: one big hyperedge covering a
        clique keeps ghw = 1 while the treewidth is n−1."""
        assert hypertree_width_interval(H("abcdef")) == (1, 1)


class TestInstanceWidths:
    def test_triangle_coloring(self):
        inst = coloring_instance(cycle_graph(3), 2)
        assert instance_hypertree_interval(inst) == (2, 2)

    def test_path_coloring(self):
        inst = coloring_instance(path_graph(5), 2)
        assert instance_hypertree_interval(inst) == (1, 1)

    def test_single_big_constraint_is_acyclic(self):
        rows = {(0, 0, 0, 0)}
        inst = CSPInstance(list("abcd"), [0], [Constraint(tuple("abcd"), rows)])
        assert instance_hypertree_interval(inst) == (1, 1)
        assert query_width_interval(inst) == (1, 1)


class TestQueryWidth:
    def test_acyclic_query_width_one(self):
        inst = coloring_instance(path_graph(4), 2)
        assert query_width_interval(inst) == (1, 1)

    def test_cyclic_lower_bound_two(self):
        inst = coloring_instance(cycle_graph(4), 2)
        lower, upper = query_width_interval(inst)
        assert lower == 2
        assert upper >= lower

    def test_incidence_treewidth_small_for_paths(self):
        inst = coloring_instance(path_graph(5), 2)
        assert incidence_treewidth(inst) <= 2

    def test_upper_bound_at_most_constraints(self):
        inst = coloring_instance(cycle_graph(4), 2)
        assert query_width_upper_bound(inst) <= len(inst.constraints)

    def test_no_constraints(self):
        inst = CSPInstance(["x"], [0], [])
        assert query_width_upper_bound(inst) == 0


class TestWidthHierarchy:
    """The Section 6 story: tw can be huge while ghw stays 1; acyclic is
    the common floor; querywidth bounds hypertree width from above."""

    def test_clique_separates_treewidth_from_hypertree_width(self):
        from repro.width.treedecomp import treewidth_of_instance

        n = 6
        rows = {tuple(range(n))}  # one n-ary constraint (domain big enough)
        inst = CSPInstance(
            list(range(n)), list(range(n)), [Constraint(tuple(range(n)), rows)]
        )
        assert treewidth_of_instance(inst) == n - 1
        assert instance_hypertree_interval(inst) == (1, 1)

    def test_acyclic_instances_have_all_widths_one(self):
        inst = coloring_instance(path_graph(6), 2)
        assert instance_hypertree_interval(inst)[1] == 1
        assert query_width_interval(inst)[1] == 1


class TestQueryDecompositionCertificates:
    """The Chekuri–Rajaraman construction as an executable certificate."""

    def test_certificates_are_valid(self):
        from repro.width.querywidth import query_decomposition_from_incidence
        from repro.generators.csp_random import coloring_instance
        from repro.generators.graphs import cycle_graph, grid_graph, path_graph

        for inst in [
            coloring_instance(path_graph(5), 2),
            coloring_instance(cycle_graph(5), 2),
            coloring_instance(grid_graph(2, 3), 2),
        ]:
            qd = query_decomposition_from_incidence(inst)
            assert qd.is_valid()
            assert qd.width >= 1

    def test_certificate_width_upper_bounds_interval(self):
        from repro.width.querywidth import (
            query_decomposition_from_incidence,
            query_width_lower_bound,
        )
        from repro.generators.csp_random import coloring_instance
        from repro.generators.graphs import cycle_graph

        inst = coloring_instance(cycle_graph(6), 2)
        qd = query_decomposition_from_incidence(inst)
        assert query_width_lower_bound(inst) <= qd.width

    def test_invalid_tree_rejected(self):
        import pytest as _pytest

        from repro.errors import DecompositionError
        from repro.width.querywidth import QueryDecomposition

        with _pytest.raises(DecompositionError):
            QueryDecomposition(
                {0: {0}, 1: {0}, 2: {0}},
                {0: set(), 1: set(), 2: set()},
                [(0, 1), (1, 2), (2, 0)],
                [frozenset({"x"})],
            )

    def test_missing_atom_invalid(self):
        from repro.width.querywidth import QueryDecomposition

        qd = QueryDecomposition(
            {0: {0}},
            {0: set()},
            [],
            [frozenset({"x"}), frozenset({"y"})],  # atom 1 uncovered
        )
        assert not qd.is_valid()

    def test_disconnected_variable_invalid(self):
        from repro.width.querywidth import QueryDecomposition

        # Variable "x" covered at nodes 0 and 2 but not at 1.
        qd = QueryDecomposition(
            {0: {0}, 1: set(), 2: {1}},
            {0: set(), 1: {"z"}, 2: set()},
            [(0, 1), (1, 2)],
            [frozenset({"x", "y"}), frozenset({"x", "w"})],
        )
        assert not qd.is_valid()


class TestExactGeneralizedHypertreeWidth:
    def test_known_values(self):
        from repro.width.hypertree import exact_generalized_hypertree_width as ghw

        assert ghw(H("ab", "bc", "cd")) == 1
        assert ghw(H("ab", "bc", "ca")) == 2
        assert ghw(H("abcdef")) == 1
        assert ghw(H("ab", "ac", "ad", "bc", "bd", "cd")) == 2  # K4 by edges
        assert ghw([frozenset({i, (i + 1) % 6}) for i in range(6)]) == 2
        assert ghw([]) == 0

    def test_within_interval_bounds(self):
        import random

        from repro.width.hypertree import (
            exact_generalized_hypertree_width as ghw,
            hypertree_width_interval,
        )

        rng = random.Random(7)
        for _ in range(12):
            n = rng.randint(3, 6)
            edges = [
                frozenset(rng.sample(range(n), rng.randint(2, 3)))
                for _ in range(rng.randint(2, 6))
            ]
            lo, hi = hypertree_width_interval(edges)
            exact = ghw(edges)
            assert lo <= exact <= hi

    def test_size_guard(self):
        from repro.errors import DecompositionError
        from repro.width.hypertree import exact_generalized_hypertree_width as ghw

        big = [frozenset({i, i + 1}) for i in range(20)]
        with pytest.raises(DecompositionError):
            ghw(big, max_vertices=10)

    def test_dominated_by_treewidth_plus_one(self):
        """ghw ≤ tw + 1 always (cover each bag element by one edge)."""
        from repro.width.hypertree import exact_generalized_hypertree_width as ghw
        from repro.width.treedecomp import treewidth_exact
        from repro.width.graph import Graph

        edges = [frozenset({i, (i + 1) % 5}) for i in range(5)]
        g = Graph(edges=[tuple(e) for e in edges])
        assert ghw(edges) <= treewidth_exact(g) + 1
