"""Tree decompositions and treewidth, with networkx as an oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    partial_ktree,
    path_graph,
    random_graph,
)
from repro.width.gaifman import constraint_graph, gaifman_graph
from repro.width.graph import Graph
from repro.width.treedecomp import (
    TreeDecomposition,
    decomposition_of_instance,
    from_elimination_order,
    heuristic_decomposition,
    min_degree_order,
    min_fill_order,
    treewidth_exact,
    treewidth_of_instance,
    treewidth_of_structure,
    treewidth_upper_bound,
)
from repro.relational.structure import Structure


class TestTreeDecomposition:
    def test_width(self):
        td = TreeDecomposition({0: {1, 2}, 1: {2, 3}}, [(0, 1)])
        assert td.width == 1

    def test_rejects_empty_bag(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition({0: set()}, [])

    def test_rejects_cycle(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition(
                {0: {1}, 1: {1}, 2: {1}}, [(0, 1), (1, 2), (2, 0)]
            )

    def test_rejects_unknown_edge_node(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition({0: {1}}, [(0, 7)])

    def test_validity_conditions(self):
        # A valid decomposition of the triangle: one bag with everything.
        td = TreeDecomposition({0: {1, 2, 3}}, [])
        assert td.is_valid_for([1, 2, 3], [frozenset({1, 2}), frozenset({2, 3})])
        # Missing coverage of a hyperedge:
        td2 = TreeDecomposition({0: {1, 2}, 1: {3}}, [(0, 1)])
        assert not td2.is_valid_for([1, 2, 3], [frozenset({1, 3})])

    def test_connectivity_condition(self):
        # Vertex 1 appears in two non-adjacent bags: invalid.
        td = TreeDecomposition({0: {1}, 1: {2}, 2: {1}}, [(0, 1), (1, 2)])
        assert not td.is_valid_for([1, 2], [])

    def test_rooted(self):
        td = TreeDecomposition({0: {1}, 1: {1, 2}, 2: {2, 3}}, [(0, 1), (1, 2)])
        root, children = td.rooted(0)
        assert root == 0
        assert children[0] == [1]
        assert children[1] == [2]


class TestEliminationOrders:
    def test_path_order_width_one(self):
        g = path_graph(5)
        td = from_elimination_order(g, [0, 4, 1, 3, 2])
        assert td.width <= 1

    def test_invalid_order_rejected(self):
        with pytest.raises(DecompositionError):
            from_elimination_order(path_graph(3), [0, 1])

    def test_decomposition_is_valid(self):
        g = cycle_graph(6)
        for order_fn in (min_degree_order, min_fill_order):
            td = from_elimination_order(g, order_fn(g))
            hyperedges = [frozenset(e) for e in g.edges()]
            assert td.is_valid_for(g.vertices, hyperedges)

    def test_disconnected_graph_handled(self):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        td = from_elimination_order(g, min_degree_order(g))
        assert td.is_valid_for(g.vertices, [frozenset({0, 1}), frozenset({2, 3})])


class TestExactTreewidth:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 1),
            (cycle_graph(5), 2),
            (complete_graph(5), 4),
            (grid_graph(3, 3), 3),
            (Graph(vertices=[0]), 0),
            (Graph(vertices=[0, 1]), 0),
        ],
    )
    def test_known_values(self, graph, expected):
        assert treewidth_exact(graph) == expected

    def test_empty_graph(self):
        assert treewidth_exact(Graph()) == -1

    def test_partial_ktree_bound(self):
        for k in (1, 2, 3):
            g = partial_ktree(10, k, 0.8, seed=k)
            assert treewidth_exact(g) <= k

    def test_heuristic_upper_bounds_exact(self):
        for seed in range(6):
            g = random_graph(8, 0.35, seed=seed)
            assert treewidth_upper_bound(g) >= treewidth_exact(g)

    def test_heuristic_never_below_networkx_heuristic_lower(self):
        # Exact value sits between any lower bound and our heuristic.
        for seed in range(4):
            g = random_graph(7, 0.4, seed=seed)
            ng = nx.Graph(list(g.edges()))
            ng.add_nodes_from(g.vertices)
            nx_width, _ = nx.algorithms.approximation.treewidth_min_fill_in(ng)
            exact = treewidth_exact(g)
            assert exact <= treewidth_upper_bound(g)
            assert exact <= nx_width  # networkx gives an upper bound too


class TestStructureAndInstanceWidths:
    def test_structure_treewidth(self):
        s = Structure({"E": 2}, range(4), {"E": [(0, 1), (1, 2), (2, 3)]})
        assert treewidth_of_structure(s) == 1

    def test_ternary_tuples_form_cliques(self):
        s = Structure({"R": 3}, range(3), {"R": [(0, 1, 2)]})
        assert treewidth_of_structure(s) == 2

    def test_instance_treewidth(self):
        inst = coloring_instance(cycle_graph(5), 3)
        assert treewidth_of_instance(inst) == 2

    def test_decomposition_of_instance_valid(self):
        inst = coloring_instance(grid_graph(2, 3), 2)
        td = decomposition_of_instance(inst)
        hyperedges = [frozenset(c.scope) for c in inst.constraints]
        assert td.is_valid_for(inst.variables, hyperedges)

    def test_no_variables_raises(self):
        from repro.csp.instance import CSPInstance

        with pytest.raises(DecompositionError):
            decomposition_of_instance(CSPInstance([], [0], []))


edge_sets = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(lambda e: e[0] != e[1]),
    max_size=10,
)


@settings(max_examples=40, deadline=None)
@given(edge_sets)
def test_elimination_decompositions_always_valid(edges):
    g = Graph(vertices=range(6), edges=edges)
    td = from_elimination_order(g, min_degree_order(g))
    hyperedges = [frozenset(e) for e in g.edges()]
    assert td.is_valid_for(g.vertices, hyperedges)
    assert td.width >= treewidth_exact(g)


@settings(max_examples=25, deadline=None)
@given(edge_sets)
def test_exact_treewidth_matches_definition_via_orders(edges):
    """Exact width ≤ width of every elimination order (spot: two heuristics)."""
    g = Graph(vertices=range(6), edges=edges)
    exact = treewidth_exact(g)
    for order_fn in (min_degree_order, min_fill_order):
        td = from_elimination_order(g, order_fn(g))
        assert exact <= td.width
