"""GYO reduction, join trees, and Yannakakis evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute
from repro.errors import DecompositionError
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import cycle_graph, path_graph
from repro.width.acyclic import (
    gyo_reduction,
    is_acyclic,
    join_tree,
    yannakakis_is_solvable,
    yannakakis_solve,
)

NE = {(0, 1), (1, 0)}


def H(*edge_sets):
    return [frozenset(e) for e in edge_sets]


class TestGYO:
    def test_path_hypergraph_acyclic(self):
        assert is_acyclic(H("ab", "bc", "cd"))

    def test_triangle_of_edges_cyclic(self):
        assert not is_acyclic(H("ab", "bc", "ca"))

    def test_triangle_with_covering_edge_acyclic(self):
        # α-acyclicity: adding the big hyperedge makes it acyclic.
        assert is_acyclic(H("ab", "bc", "ca", "abc"))

    def test_star_acyclic(self):
        assert is_acyclic(H("ab", "ac", "ad"))

    def test_single_edge(self):
        assert is_acyclic(H("abc"))

    def test_empty_hypergraph(self):
        assert is_acyclic([])

    def test_reduction_records_parents(self):
        remaining, parents = gyo_reduction(H("ab", "bc"))
        assert all(not r for r in remaining)
        assert len(parents) <= 1  # one absorption (the other dies as ear-root)


class TestJoinTree:
    def test_cyclic_raises(self):
        with pytest.raises(DecompositionError):
            join_tree(H("ab", "bc", "ca"))

    def test_acyclic_builds_forest(self):
        tree = join_tree(H("ab", "bc", "cd"))
        assert len(tree.roots) >= 1
        order = tree.topological_order()
        assert len(order) == 3

    def test_children_before_parents(self):
        tree = join_tree(H("ab", "bc", "cd"))
        order = tree.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for child, parent in tree.parent.items():
            assert position[child] < position[parent]

    def test_disconnected_components(self):
        tree = join_tree(H("ab", "cd"))
        assert len(tree.topological_order()) == 2


class TestYannakakis:
    def test_acyclic_coloring_solved(self):
        inst = coloring_instance(path_graph(6), 2)
        solution = yannakakis_solve(inst)
        assert solution is not None
        assert inst.is_solution(solution)

    def test_unsolvable_detected(self):
        eq = {(0, 0), (1, 1)}
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x", "y"), NE), Constraint(("y", "x"), eq)],
        )
        # x≠y and y=x simultaneously: empty join, acyclic hypergraph.
        assert not yannakakis_is_solvable(inst)
        assert yannakakis_solve(inst) is None

    def test_cyclic_instance_raises(self):
        inst = coloring_instance(cycle_graph(3), 3)
        with pytest.raises(DecompositionError):
            yannakakis_is_solvable(inst)

    def test_star_queries(self):
        inst = CSPInstance(
            ["c", "l1", "l2", "l3"],
            [0, 1],
            [Constraint(("c", leaf), NE) for leaf in ("l1", "l2", "l3")],
        )
        solution = yannakakis_solve(inst)
        assert solution is not None and inst.is_solution(solution)

    def test_no_constraints(self):
        inst = CSPInstance(["x"], [0, 1], [])
        assert yannakakis_is_solvable(inst)
        assert yannakakis_solve(inst) is not None

    def test_ternary_acyclic(self):
        rows = {(0, 0, 1), (1, 0, 1)}
        inst = CSPInstance(
            ["x", "y", "z", "w"],
            [0, 1],
            [Constraint(("x", "y", "z"), rows), Constraint(("z", "w"), NE)],
        )
        solution = yannakakis_solve(inst)
        assert solution is not None and inst.is_solution(solution)


@st.composite
def acyclic_instances(draw):
    """Random path-shaped (hence acyclic) binary CSPs."""
    n = draw(st.integers(2, 5))
    constraints = []
    for i in range(n - 1):
        rows = draw(
            st.sets(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=0, max_size=4)
        )
        constraints.append(Constraint((i, i + 1), rows))
    return CSPInstance(list(range(n)), [0, 1], constraints)


@settings(max_examples=60, deadline=None)
@given(acyclic_instances())
def test_yannakakis_matches_brute_force(instance):
    assert yannakakis_is_solvable(instance) == brute.is_solvable(instance)
    solution = yannakakis_solve(instance)
    if solution is not None:
        assert instance.is_solution(solution)
    else:
        assert not brute.is_solvable(instance)
