"""Integration tests organized by paper claim.

Each class below corresponds to one numbered statement of the tutorial and
exercises it across module boundaries — the "does the library actually say
what the paper says" layer on top of the per-module unit tests.
"""

import pytest

from repro.consistency.establish import (
    can_establish,
    check_establishes,
    establish_strong_k_consistency,
)
from repro.consistency.local import (
    is_strongly_k_consistent,
    is_strongly_k_consistent_via_game,
)
from repro.cq.bounded import count_variables, evaluate_formula, formula_for_structure
from repro.cq.canonical import canonical_query
from repro.cq.containment import is_contained_in
from repro.cq.evaluate import evaluate_boolean
from repro.csp.convert import csp_to_homomorphism, homomorphism_to_csp
from repro.csp.solvers import backtracking, brute, consistency, decomposition, join
from repro.csp.solvers.consistency import Verdict
from repro.datalog.canonical import canonical_program
from repro.datalog.engine import goal_holds
from repro.datalog.library import non_two_colorability_program
from repro.games.pebble import duplicator_wins, solve_game, spoiler_wins
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import (
    cycle_graph,
    directed_cycle_structure,
    graph_as_digraph_structure,
    partial_ktree,
    random_digraph,
    random_graph,
)
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure
from repro.views.certain import ViewSetup, certain_answer_bruteforce
from repro.views.reduction import csp_to_view_reduction
from repro.views.template import certain_answer_via_csp

K2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})


class TestProposition21:
    """A CSP instance is solvable iff ⋈ of its constraint relations ≠ ∅."""

    @pytest.mark.parametrize("seed", range(8))
    def test_on_random_instances(self, seed):
        inst = random_binary_csp(5, 3, 7, 0.35 + 0.07 * seed, seed=seed)
        assert join.is_solvable(inst) == brute.is_solvable(inst)


class TestProposition23:
    """∃hom(A → B) ⟺ B ⊨ φ_A ⟺ φ_B ⊆ φ_A."""

    @pytest.mark.parametrize("seed", range(6))
    def test_three_formulations(self, seed):
        a = random_digraph(3, 0.5, seed=seed)
        b = random_digraph(3, 0.6, seed=seed + 17)
        if not a.relation("E") or not b.relation("E"):
            return
        hom = homomorphism_exists(a, b)
        assert evaluate_boolean(canonical_query(a), b) == hom
        assert is_contained_in(canonical_query(b), canonical_query(a)) == hom


class TestSection2Conversions:
    """CSP ↔ homomorphism conversions preserve solvability."""

    @pytest.mark.parametrize("seed", range(6))
    def test_round_trip_solvability(self, seed):
        inst = random_binary_csp(4, 2, 5, 0.5, seed=seed)
        a, b = csp_to_homomorphism(inst)
        assert homomorphism_exists(a, b) == brute.is_solvable(inst)
        back = homomorphism_to_csp(a, b)
        assert brute.is_solvable(back) == brute.is_solvable(inst)


class TestTheorem45:
    """The game is decided in polynomial time and ρ_B expresses it."""

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_rho_b_expresses_spoiler_win(self, n):
        cp = canonical_program(K2, 3)
        a = graph_as_digraph_structure(cycle_graph(n))
        assert cp.spoiler_wins(a) == spoiler_wins(a, K2, 3)


class TestTheorem46:
    """For B = K2 (2-colorability): ¬CSP(B) is k-Datalog-expressible, so the
    Spoiler wins exactly on the no-instances (at the right k)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_spoiler_win_equals_non_2_colorability(self, seed):
        g = random_graph(6, 0.3, seed=seed)
        a = graph_as_digraph_structure(g)
        # k = 4 covers the paper's 4-Datalog program; k = 3 suffices in our
        # experiments for odd-cycle detection.
        assert spoiler_wins(a, K2, 3) == (not g.is_bipartite())

    @pytest.mark.parametrize("seed", range(8))
    def test_paper_program_matches_game(self, seed):
        g = random_graph(6, 0.3, seed=seed)
        a = graph_as_digraph_structure(g)
        program_says = goal_holds(non_two_colorability_program(), a)
        assert program_says == spoiler_wins(a, K2, 3)


class TestTheorem47:
    """The k-consistency procedure is a *sound* uniform refutation, complete
    on Datalog-expressible templates."""

    @pytest.mark.parametrize("seed", range(6))
    def test_soundness_uniform(self, seed):
        inst = random_binary_csp(5, 3, 7, 0.55, seed=seed)
        if consistency.solve_decision(inst, 2) is Verdict.UNSATISFIABLE:
            assert not brute.is_solvable(inst)

    @pytest.mark.parametrize("n", [5, 6, 7, 8])
    def test_completeness_on_2col(self, n):
        inst = coloring_instance(cycle_graph(n), 2)
        verdict = consistency.solve_decision(inst, 3)
        assert (verdict is Verdict.CONSISTENT) == (n % 2 == 0)


class TestProposition53AndTheorem56:
    """Consistency ⟺ game, and establishment works exactly when the
    Duplicator wins."""

    @pytest.mark.parametrize("seed", range(5))
    def test_consistency_game_equivalence(self, seed):
        inst = random_binary_csp(4, 2, 4, 0.45, seed=seed)
        for k in (1, 2):
            assert is_strongly_k_consistent(inst, k) == (
                is_strongly_k_consistent_via_game(inst, k)
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_establishment_iff_duplicator_wins(self, seed):
        a = random_digraph(3, 0.5, seed=seed)
        b = random_digraph(3, 0.6, seed=seed + 23)
        game_won = duplicator_wins(a, b, 2)
        assert can_establish(a, b, 2) == game_won
        if game_won:
            a2, b2 = establish_strong_k_consistency(a, b, 2)
            assert check_establishes(a, b, a2, b2, 2)


class TestTheorem62:
    """Bounded-treewidth CSP is polynomial; the ∃FO^{k+1} formula is
    equivalent to φ_A."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_bounded_width_instances_solved(self, k):
        g = partial_ktree(12, k, 0.9, seed=k)
        inst = coloring_instance(g, 3)
        assert decomposition.is_solvable(inst) == backtracking.is_solvable(inst)

    @pytest.mark.parametrize("seed", range(5))
    def test_formula_equivalence(self, seed):
        a = random_digraph(4, 0.4, seed=seed)
        if not a.relation("E"):
            return
        b = random_digraph(3, 0.5, seed=seed + 7)
        f = formula_for_structure(a)
        assert evaluate_formula(f, b) == homomorphism_exists(a, b)

    def test_variable_budget(self):
        a = graph_as_digraph_structure(partial_ktree(8, 2, 1.0, seed=1))
        f = formula_for_structure(a)
        assert count_variables(f) <= 3 + 1  # heuristic may exceed k=2 by one


class TestTheorem73:
    """CSP(A, B) solvable ⟺ (c, d) ∉ cert(Q, V) through the reduction."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_round_trip(self, n):
        red = csp_to_view_reduction(K2)
        a = directed_cycle_structure(n)
        views, c, d = red.setup_for(a)
        cert = certain_answer_bruteforce(red.query, views, c, d, max_word_length=2)
        assert (not cert) == homomorphism_exists(a, K2)


class TestTheorem75:
    """View answering reduces to CSP against the constraint template."""

    @pytest.mark.parametrize("seed", range(10))
    def test_template_equals_bruteforce(self, seed):
        import random

        rng = random.Random(seed + 1000)
        defs = {"V0": rng.choice(["a", "a b", "a | b"])}
        objects = ["x", "y", "z"]
        exts = {
            "V0": {(rng.choice(objects), rng.choice(objects)) for _ in range(2)}
        }
        views = ViewSetup(defs, exts)
        q = rng.choice(["a", "a b", "a a", "a*"])
        c, d = rng.choice(objects), rng.choice(objects)
        assert certain_answer_via_csp(q, views, c, d) == certain_answer_bruteforce(
            q, views, c, d, max_word_length=3
        )


class TestCrossSolverMatrix:
    """Global sanity: every complete solver agrees on every workload type."""

    WORKLOADS = [
        lambda: coloring_instance(cycle_graph(5), 2),
        lambda: coloring_instance(cycle_graph(6), 2),
        lambda: coloring_instance(cycle_graph(5), 3),
        lambda: random_binary_csp(5, 2, 6, 0.3, seed=1),
        lambda: random_binary_csp(5, 2, 6, 0.7, seed=2),
        lambda: random_binary_csp(4, 4, 5, 0.5, seed=3),
    ]

    @pytest.mark.parametrize("workload_index", range(len(WORKLOADS)))
    def test_matrix(self, workload_index):
        inst = self.WORKLOADS[workload_index]()
        expected = brute.is_solvable(inst)
        assert backtracking.is_solvable(inst) == expected
        assert join.is_solvable(inst) == expected
        assert decomposition.is_solvable(inst) == expected
        assert consistency.is_solvable(inst, 2) == expected
