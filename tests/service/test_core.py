"""QueryService: query answers always match direct evaluation (cached or
not), updates invalidate, latencies land in the histograms."""

import pytest

from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.datalog.library import transitive_closure_program
from repro.errors import DomainError, VocabularyError
from repro.service.core import QueryService

EDGES = {(1, 2), (2, 3), (3, 4), (2, 5)}


def make_service(**kwargs):
    return QueryService(transitive_closure_program(), {"E": EDGES}, **kwargs)


def test_answers_match_direct_evaluation_hit_or_miss():
    svc = make_service()
    variants = [
        "Q(X, Y) :- T(X, Y).",
        "P(A, B) :- T(A, B).",
        "R(U, V) :- T(U, V), T(U, W).",  # redundant atom, still equivalent
    ]
    reference = evaluate(
        parse_query(variants[0]), svc.engine.as_structure()
    ).tuples
    outcomes = []
    for text in variants:
        answer = svc.ask(text)
        outcomes.append(answer.outcome)
        assert answer.result.tuples == reference
    assert outcomes[0] == "miss"
    assert set(outcomes[1:]) == {"equivalence"}
    assert svc.ask(variants[0]).outcome == "exact"


def test_update_invalidates_and_answers_track_new_state():
    svc = make_service()
    assert (1, 9) not in svc.query("Q(X, Y) :- T(X, Y).").tuples
    report = svc.update(inserts={"E": {(4, 9)}})
    assert "T" in report.dirty
    answer = svc.ask("Q(X, Y) :- T(X, Y).")
    assert answer.outcome == "miss"  # invalidated
    assert (1, 9) in answer.result.tuples


def test_untouched_predicates_keep_their_cache_entries():
    svc = QueryService(
        transitive_closure_program(), {"E": EDGES}
    )
    svc.ask("Q(X, Y) :- T(X, Y).")
    report = svc.update(inserts={"E": {(1, 2)}})  # already present: no-op
    assert report.dirty == frozenset()
    assert svc.ask("P(A, B) :- T(A, B).").outcome == "equivalence"


def test_latency_histograms_fill():
    svc = make_service()
    svc.ask("Q(X) :- E(X, Y).")
    svc.update(inserts={"E": {(7, 8)}})
    assert svc.query_latency.count == 1
    assert svc.update_latency.count == 1
    stats = svc.stats()
    assert stats["query_latency"]["count"] == 1
    assert stats["query_latency"]["p99"] >= stats["query_latency"]["p50"] > 0
    assert stats["cache"]["misses"] == 1
    assert stats["generation"] == 1


def test_query_over_edb_and_idb_predicates():
    svc = make_service()
    two_hop = svc.query("Q(X, Z) :- E(X, Y), E(Y, Z).")
    assert (1, 3) in two_hop.tuples
    assert (1, 4) not in two_hop.tuples


def test_constructor_validation_propagates():
    with pytest.raises(DomainError):
        make_service(deletion="counting")  # TC is recursive
    with pytest.raises(DomainError):
        make_service(deletion="nonsense")


def test_update_validation_propagates():
    svc = make_service()
    with pytest.raises(VocabularyError):
        svc.update(inserts={"T": {(1, 2)}})


def test_accepts_parsed_query_objects():
    svc = make_service()
    q = parse_query("Q(X, Y) :- T(X, Y).")
    assert svc.ask(q).result.tuples == svc.ask("P(A, B) :- T(A, B).").result.tuples
