"""The multi-tenant workload generator: reproducible, type-correct, and
every query variant provably equivalent to its template."""

import random

from repro.cq.containment import are_equivalent
from repro.cq.parser import parse_query
from repro.service.stream import (
    QueryEvent,
    UpdateEvent,
    equivalent_variant,
    service_stream,
)


def test_stream_is_reproducible():
    a = service_stream(50, seed=3)
    b = service_stream(50, seed=3)
    assert a.database == b.database
    assert a.events == b.events
    assert service_stream(50, seed=4).events != a.events


def test_stream_shape_and_update_cadence():
    wl = service_stream(56, update_every=14, templates=3, tenants=5)
    assert len(wl.events) == 56
    assert wl.update_events == 4  # events 14, 28, 42, 56
    assert wl.query_events == 52
    for event in wl.events:
        if isinstance(event, QueryEvent):
            assert 0 <= event.tenant < 5
            assert 0 <= event.template < 3
        else:
            assert isinstance(event, UpdateEvent)
            assert set(event.inserts) <= {"E"} and set(event.deletes) <= {"E"}


def test_variants_are_equivalent_to_their_template():
    rng = random.Random(0)
    wl = service_stream(40, templates=4)
    for event in wl.events:
        if isinstance(event, QueryEvent):
            assert are_equivalent(event.query, wl.templates[event.template])
    # And directly, including the redundant-atom branch:
    template = parse_query("Q(X, Z) :- E(X, Y), T(Y, Z).")
    for _ in range(30):
        variant = equivalent_variant(template, rng)
        assert are_equivalent(variant, template)


def test_variants_differ_syntactically():
    rng = random.Random(1)
    template = parse_query("Q(X, Z) :- E(X, Y), T(Y, Z).")
    variants = {repr(equivalent_variant(template, rng)) for _ in range(10)}
    assert len(variants) == 10  # fresh names every time


def test_updates_keep_edges_within_the_node_universe():
    wl = service_stream(100, nodes=10, edges=20, update_every=5)
    edge_set = set(wl.database["E"])
    for event in wl.events:
        if isinstance(event, UpdateEvent):
            for (a, b) in event.inserts.get("E", ()):
                assert 0 <= a < 10 and 0 <= b < 10 and a != b
                assert (a, b) not in edge_set
                edge_set.add((a, b))
            for edge in event.deletes.get("E", ()):
                assert edge in edge_set
                edge_set.discard(edge)


def test_template_count_validation():
    import pytest

    with pytest.raises(ValueError):
        service_stream(10, templates=0)
    with pytest.raises(ValueError):
        service_stream(10, templates=99)
    with pytest.raises(ValueError):
        service_stream(10, graph="torus")


def test_hierarchy_stream_is_a_forest_forever():
    """The hierarchy workload starts as a random recursive forest (every
    node's parent has a smaller index) and every reparenting batch
    preserves that invariant — so the graph stays acyclic for the whole
    stream and each node keeps exactly one parent."""
    wl = service_stream(120, nodes=40, graph="hierarchy", update_every=3)
    edge_set = set(wl.database["E"])
    assert len(edge_set) == 39  # one edge per non-root node

    def check_forest(edges):
        parents = {}
        for (p, c) in edges:
            assert p < c, f"edge {p}->{c} violates the parent<child invariant"
            assert c not in parents, f"node {c} has two parents"
            parents[c] = p

    check_forest(edge_set)
    for event in wl.events:
        if isinstance(event, UpdateEvent):
            deletes = event.deletes.get("E", frozenset())
            inserts = event.inserts.get("E", frozenset())
            assert not (deletes & inserts)
            for edge in deletes:
                assert edge in edge_set
                edge_set.discard(edge)
            for edge in inserts:
                assert edge not in edge_set
                edge_set.add(edge)
            check_forest(edge_set)
            # A reparenting batch swaps edges one-for-one.
            assert len(edge_set) == 39


def test_hierarchy_stream_is_reproducible():
    a = service_stream(60, graph="hierarchy", nodes=25, seed=7)
    b = service_stream(60, graph="hierarchy", nodes=25, seed=7)
    assert a.database == b.database and a.events == b.events
