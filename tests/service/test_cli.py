"""``repro serve`` protocol and ``repro bench-service`` reporting."""

import argparse
import io
import json

from repro.service.cli import (
    add_bench_service_arguments,
    add_serve_arguments,
    bench_service_report,
    run_bench_service,
    run_serve,
)


def serve_session(lines, **overrides):
    parser = argparse.ArgumentParser()
    add_serve_arguments(parser)
    args = parser.parse_args([])
    for key, value in overrides.items():
        setattr(args, key, value)
    stdout = io.StringIO()
    run_serve(args, stdin=io.StringIO("\n".join(lines) + "\n"), stdout=stdout)
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


def bench_args(**overrides):
    parser = argparse.ArgumentParser()
    add_bench_service_arguments(parser)
    args = parser.parse_args([])
    args.events = 40
    args.update_every = 10
    for key, value in overrides.items():
        setattr(args, key, value)
    return args


def test_serve_query_insert_delete_stats_quit():
    responses = serve_session([
        '{"op": "insert", "predicate": "E", "rows": [[1, 2], [2, 3]]}',
        '{"op": "query", "q": "Q(X, Y) :- T(X, Y)."}',
        '{"op": "query", "q": "P(A, B) :- T(A, B)."}',
        '{"op": "delete", "predicate": "E", "rows": [[2, 3]]}',
        '{"op": "query", "q": "Q(X, Y) :- T(X, Y)."}',
        '{"op": "stats"}',
        '{"op": "quit"}',
    ])
    assert [r["ok"] for r in responses] == [True] * 7
    assert responses[0]["rows_added"] == 5  # 2 EDB facts + 3 T facts
    assert responses[1]["outcome"] == "miss"
    assert sorted(map(tuple, responses[1]["rows"])) == [(1, 2), (1, 3), (2, 3)]
    assert responses[2]["outcome"] == "equivalence"
    assert responses[2]["attributes"] == ["A", "B"]
    assert "T" in responses[3]["dirty"]
    assert responses[4]["outcome"] == "miss"
    assert sorted(map(tuple, responses[4]["rows"])) == [(1, 2)]
    stats = responses[5]["stats"]
    assert stats["cache"]["equivalence_hits"] == 1
    assert stats["generation"] == 2
    assert responses[6]["op"] == "quit"


def test_serve_reports_errors_without_dying():
    responses = serve_session([
        '{"op": "bogus"}',
        'not json at all',
        '{"op": "query"}',
        '{"op": "insert", "predicate": "T", "rows": [[1, 2]]}',
        '{"op": "query", "q": "Q(X, Y) :- T(X, Y)."}',
    ])
    assert [r["ok"] for r in responses] == [False, False, False, False, True]
    assert "unknown op" in responses[0]["error"]


def test_serve_skips_blank_lines():
    responses = serve_session(["", '{"op": "stats"}', "   ", '{"op": "quit"}'])
    assert len(responses) == 2


def test_bench_report_shape_and_consistency():
    report = bench_service_report(bench_args())
    assert report["events"] == 40
    assert report["query_events"] + report["update_events"] == 40
    cache = report["service"]["cache"]
    assert cache["lookups"] == report["query_events"]
    assert 0.0 <= cache["hit_rate"] <= 1.0
    assert report["service"]["query_latency"]["count"] == report["query_events"]
    assert "baseline" in report and "update_speedup" in report
    assert report["baseline"]["update_latency"]["count"] == report["update_events"]


def test_bench_no_baseline_skips_the_second_run():
    report = bench_service_report(bench_args(no_baseline=True))
    assert "baseline" not in report and "update_speedup" not in report


def test_bench_human_and_json_outputs():
    out = io.StringIO()
    run_bench_service(bench_args(no_baseline=True), stdout=out)
    text = out.getvalue()
    assert "bench-service: 40 events" in text
    assert "cache:" in text and "update latency" in text

    out = io.StringIO()
    run_bench_service(bench_args(no_baseline=True, json=True), stdout=out)
    parsed = json.loads(out.getvalue())
    assert parsed["events"] == 40


def test_bench_jsonl_stream_validates():
    """The --jsonl stream parses and reaggregates like every other trace
    (the shape tools/validate_trace.py checks)."""
    from repro.telemetry import parse_jsonl, validate_events

    out = io.StringIO()
    run_bench_service(bench_args(events=20, update_every=7, jsonl=True), stdout=out)
    events = parse_jsonl(io.StringIO(out.getvalue()))
    assert events
    assert validate_events(events) == []
    names = {e.get("name") for e in events if e.get("type") == "span_open"}
    assert "service.query" in names and "service.update" in names
