"""ResultCache: the three probe tiers, FIFO eviction, per-predicate
invalidation, and honest counters."""

from repro.cq.containment import minimize
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.relational.relation import Relation
from repro.service.cache import ResultCache


def stored(cache, text, rows):
    q = minimize(parse_query(text))
    cache.store(q, Relation(tuple(v.name for v in q.distinguished), rows))
    return q


def test_exact_hit_on_identical_minimized_query():
    cache = ResultCache()
    q = stored(cache, "Q(X, Y) :- E(X, Y).", [(1, 2)])
    outcome, result = cache.lookup(q)
    assert outcome == "exact"
    assert result.tuples == frozenset({(1, 2)})
    assert cache.stats.exact_hits == 1


def test_equivalence_hit_renames_to_probe_attributes():
    cache = ResultCache()
    stored(cache, "Q(X, Y) :- E(X, Y).", [(1, 2)])
    probe = minimize(parse_query("Other(A, B) :- E(A, B)."))
    outcome, result = cache.lookup(probe)
    assert outcome == "equivalence"
    assert result.attributes == ("A", "B")
    assert result.tuples == frozenset({(1, 2)})


def test_projection_hit_projects_a_wider_cached_answer():
    cache = ResultCache()
    stored(cache, "Q(X, Y) :- E(X, Y).", [(1, 2), (1, 3)])
    probe = minimize(parse_query("P(A) :- E(A, B)."))
    outcome, result = cache.lookup(probe)
    assert outcome == "projection"
    assert result.attributes == ("A",)
    assert result.tuples == frozenset({(1,)})
    assert cache.stats.projection_hits == 1


def cycle_query(predicate, length=11, tag=""):
    """A Boolean directed-cycle query of prime length: a genuine core whose
    vertex-transitivity defeats color refinement (11! orderings > the
    permutation cap), so it gets no canonical key."""
    vs = [Var(f"{tag}{predicate}v{i}") for i in range(length)]
    body = [
        Atom(predicate, (vs[i], vs[(i + 1) % length])) for i in range(length)
    ]
    return ConjunctiveQuery("Q", (), body)


def test_containment_tier_answers_keyless_probes():
    """Queries past the permutation cap have no canonical key; equivalent
    keyless probes still hit via bounded Chandra–Merlin checks."""
    cache = ResultCache()
    cache.store(minimize(cycle_query("R")), Relation((), [()]))
    probe = minimize(cycle_query("R", tag="renamed_"))
    outcome, result = cache.lookup(probe)
    assert outcome == "equivalence"
    assert result.tuples == frozenset({()})
    assert cache.stats.containment_probes >= 1


def test_containment_probe_budget_is_respected():
    cache = ResultCache(containment_probes=2)
    for j in range(4):  # four keyless entries over distinct predicates
        cache.store(minimize(cycle_query(f"R{j}")), Relation((), []))
    probe = minimize(cycle_query("S"))
    before = cache.stats.containment_probes
    outcome, _ = cache.lookup(probe)
    assert outcome == "miss"
    assert cache.stats.containment_probes - before == 2


def test_invalidation_drops_only_entries_touching_dirty_predicates():
    cache = ResultCache()
    qe = stored(cache, "Q(X) :- E(X, Y).", [(1,)])
    qf = stored(cache, "Q(X) :- F(X, Y).", [(2,)])
    dropped = cache.invalidate({"E"})
    assert dropped == 1
    assert cache.lookup(qe)[0] == "miss"
    assert cache.lookup(qf)[0] == "exact"
    assert cache.stats.invalidations == 1


def test_fifo_eviction_at_capacity():
    cache = ResultCache(capacity=2)
    q1 = stored(cache, "Q(X) :- E(X, Y).", [])
    q2 = stored(cache, "Q(X) :- F(X, Y).", [])
    q3 = stored(cache, "Q(X) :- G(X, Y).", [])
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.lookup(q1)[0] == "miss"  # oldest evicted
    assert cache.lookup(q2)[0] == "exact"
    assert cache.lookup(q3)[0] == "exact"


def test_restore_after_invalidation_works():
    cache = ResultCache()
    q = stored(cache, "Q(X) :- E(X, Y).", [(1,)])
    cache.invalidate({"E"})
    stored(cache, "Q(X) :- E(X, Y).", [(1,), (2,)])
    outcome, result = cache.lookup(q)
    assert outcome == "exact"
    assert result.tuples == frozenset({(1,), (2,)})


def test_hit_rate_arithmetic():
    cache = ResultCache()
    q = stored(cache, "Q(X) :- E(X, Y).", [])
    cache.lookup(q)
    cache.lookup(minimize(parse_query("Q(X) :- H(X, Y).")))
    stats = cache.stats
    assert stats.hits == 1 and stats.misses == 1 and stats.lookups == 2
    assert stats.hit_rate == 0.5
    as_dict = stats.as_dict()
    assert as_dict["hit_rate"] == 0.5 and as_dict["lookups"] == 2
