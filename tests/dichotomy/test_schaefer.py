"""Schaefer's dichotomy: classification and the six dedicated solvers."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute
from repro.dichotomy.boolean_solvers import (
    relation_to_2cnf_clauses,
    relation_to_linear_system,
    solve_affine,
    solve_bijunctive,
    solve_boolean,
    solve_dual_horn,
    solve_horn,
    solve_one_valid,
    solve_zero_valid,
)
from repro.dichotomy.schaefer import SchaeferClass, classify, classify_instance, is_tractable
from repro.errors import DomainError
from repro.generators.sat import (
    ONE_IN_THREE,
    random_affine_instance,
    random_one_in_three_instance,
)
from repro.relational.structure import Structure

# Canonical relations.
OR2 = {(0, 1), (1, 0), (1, 1)}  # x ∨ y
NAND = {(0, 0), (0, 1), (1, 0)}  # ¬x ∨ ¬y
IMPLIES = {(0, 0), (0, 1), (1, 1)}  # x → y
XOR = {(0, 1), (1, 0)}
EQ = {(0, 0), (1, 1)}


def template(relation, arity):
    return Structure({"R": arity}, [0, 1], {"R": relation})


class TestClassification:
    def test_nand_is_horn(self):
        classes = classify(template(NAND, 2))
        assert SchaeferClass.HORN in classes
        assert SchaeferClass.ZERO_VALID in classes
        assert SchaeferClass.ONE_VALID not in classes

    def test_or_is_dual_horn(self):
        classes = classify(template(OR2, 2))
        assert SchaeferClass.DUAL_HORN in classes
        assert SchaeferClass.HORN not in classes

    def test_implies_is_everything_bijunctive(self):
        classes = classify(template(IMPLIES, 2))
        assert {
            SchaeferClass.HORN,
            SchaeferClass.DUAL_HORN,
            SchaeferClass.BIJUNCTIVE,
            SchaeferClass.ZERO_VALID,
            SchaeferClass.ONE_VALID,
        } <= classes

    def test_xor_is_affine_and_bijunctive_not_horn(self):
        classes = classify(template(XOR, 2))
        assert SchaeferClass.AFFINE in classes
        assert SchaeferClass.BIJUNCTIVE in classes
        assert SchaeferClass.HORN not in classes

    def test_one_in_three_is_nothing(self):
        classes = classify(template(ONE_IN_THREE, 3))
        assert classes == frozenset()
        assert not is_tractable(classes)

    def test_empty_relation_in_closure_classes_only(self):
        classes = classify(template(set(), 2))
        assert SchaeferClass.ZERO_VALID not in classes
        assert SchaeferClass.HORN in classes
        assert SchaeferClass.AFFINE in classes

    def test_non_boolean_domain_rejected(self):
        with pytest.raises(DomainError):
            classify(Structure({"R": 1}, [0, 1, 2], {"R": [(2,)]}))

    def test_classify_instance(self):
        inst = CSPInstance([0, 1], (0, 1), [Constraint((0, 1), NAND)])
        assert SchaeferClass.HORN in classify_instance(inst)


class TestDedicatedSolvers:
    def test_zero_valid(self):
        inst = CSPInstance([0, 1], (0, 1), [Constraint((0, 1), NAND)])
        assert solve_zero_valid(inst) == {0: 0, 1: 0}

    def test_one_valid(self):
        inst = CSPInstance([0, 1], (0, 1), [Constraint((0, 1), OR2)])
        assert solve_one_valid(inst) == {0: 1, 1: 1}

    def test_horn_chain(self):
        # x1 ∧ (x1 → x2) ∧ (x2 → x3): unit propagation forces all true.
        inst = CSPInstance(
            [1, 2, 3],
            (0, 1),
            [
                Constraint((1,), [(1,)]),
                Constraint((1, 2), IMPLIES),
                Constraint((2, 3), IMPLIES),
            ],
        )
        assert solve_horn(inst) == {1: 1, 2: 1, 3: 1}

    def test_horn_unsat(self):
        inst = CSPInstance(
            [1, 2],
            (0, 1),
            [
                Constraint((1,), [(1,)]),
                Constraint((2,), [(1,)]),
                Constraint((1, 2), NAND),
            ],
        )
        assert solve_horn(inst) is None

    def test_dual_horn(self):
        inst = CSPInstance(
            [1, 2], (0, 1), [Constraint((1,), [(0,)]), Constraint((1, 2), OR2)]
        )
        solution = solve_dual_horn(inst)
        assert solution == {1: 0, 2: 1}

    def test_bijunctive_2sat(self):
        inst = CSPInstance(
            [1, 2, 3],
            (0, 1),
            [
                Constraint((1, 2), XOR),
                Constraint((2, 3), XOR),
                Constraint((1, 3), EQ),
            ],
        )
        solution = solve_bijunctive(inst)
        assert solution is not None and inst.is_solution(solution)

    def test_bijunctive_unsat(self):
        inst = CSPInstance(
            [1, 2],
            (0, 1),
            [Constraint((1, 2), XOR), Constraint((1, 2), EQ)],
        )
        assert solve_bijunctive(inst) is None

    def test_affine_system(self):
        inst = random_affine_instance(6, 5, seed=3)
        solution = solve_affine(inst)
        if solution is None:
            assert not brute.is_solvable(inst)
        else:
            assert inst.is_solution(solution)

    def test_affine_inconsistent(self):
        inst = CSPInstance(
            [1, 2],
            (0, 1),
            [Constraint((1, 2), XOR), Constraint((1, 2), EQ)],
        )
        assert solve_affine(inst) is None


class TestConversionHelpers:
    def test_2cnf_clauses_of_xor(self):
        clauses = relation_to_2cnf_clauses(("x", "y"), frozenset(XOR))
        assert clauses is not None
        # XOR = (x ∨ y) ∧ (¬x ∨ ¬y)
        assert len([c for c in clauses if len(c) == 2]) >= 2

    def test_one_in_three_is_not_2cnf(self):
        assert relation_to_2cnf_clauses(("x", "y", "z"), frozenset(ONE_IN_THREE)) is None

    def test_linear_system_of_xor(self):
        system = relation_to_linear_system(("x", "y"), frozenset(XOR))
        assert system is not None
        assert (("x", "y"), 1) in system

    def test_or_is_not_affine(self):
        assert relation_to_linear_system(("x", "y"), frozenset(OR2)) is None


class TestDispatcher:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_brute_force(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 5)
        constraints = []
        for _ in range(rng.randint(1, 4)):
            arity = rng.randint(1, min(3, n))
            scope = tuple(rng.sample(range(n), arity))
            rows = {
                t for t in product((0, 1), repeat=arity) if rng.random() < 0.55
            }
            constraints.append(Constraint(scope, rows))
        inst = CSPInstance(list(range(n)), (0, 1), constraints)
        solution = solve_boolean(inst)
        assert (solution is not None) == brute.is_solvable(inst)
        if solution is not None:
            assert inst.is_solution(solution)

    def test_one_in_three_falls_back_to_search(self):
        inst = random_one_in_three_instance(5, 4, seed=1)
        solution = solve_boolean(inst)
        assert (solution is not None) == brute.is_solvable(inst)


relation_strategy = st.sets(
    st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=4
)


@settings(max_examples=60, deadline=None)
@given(relation_strategy)
def test_classification_closure_definitions(relation):
    """The polymorphism-based classification matches the brute-force closure
    definitions for binary relations."""
    from repro.dichotomy.polymorphisms import (
        boolean_max,
        boolean_min,
        majority,
        minority,
        relation_closed_under,
    )

    classes = classify(template(relation, 2))
    assert (SchaeferClass.HORN in classes) == relation_closed_under(
        relation, boolean_min, 2
    )
    assert (SchaeferClass.DUAL_HORN in classes) == relation_closed_under(
        relation, boolean_max, 2
    )
    assert (SchaeferClass.BIJUNCTIVE in classes) == relation_closed_under(
        relation, majority, 3
    )
    assert (SchaeferClass.AFFINE in classes) == relation_closed_under(
        relation, minority, 3
    )


@settings(max_examples=40, deadline=None)
@given(relation_strategy)
def test_bijunctive_solver_on_majority_closed_relations(relation):
    from repro.dichotomy.polymorphisms import majority, relation_closed_under

    if not relation_closed_under(relation, majority, 3):
        return
    inst = CSPInstance(
        [0, 1, 2],
        (0, 1),
        [Constraint((0, 1), relation), Constraint((1, 2), relation)],
    )
    solution = solve_bijunctive(inst)
    assert (solution is not None) == brute.is_solvable(inst)
    if solution is not None:
        assert inst.is_solution(solution)
