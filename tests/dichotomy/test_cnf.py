"""CNF algorithms: Horn unit propagation, 2-SAT SCC, DPLL, CSP encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.solvers import brute
from repro.dichotomy.cnf import CNF, cnf_to_csp, dpll, horn_sat, two_sat
from repro.errors import DomainError


class TestCNF:
    def test_variables_collected(self):
        f = CNF([(1, -2), (3,)])
        assert f.variables == frozenset({1, 2, 3})

    def test_zero_literal_rejected(self):
        with pytest.raises(DomainError):
            CNF([(0,)])

    def test_horn_recognition(self):
        assert CNF([(1, -2, -3), (-1,)]).is_horn()
        assert not CNF([(1, 2)]).is_horn()
        assert CNF([(1, 2)]).is_dual_horn()

    def test_2cnf_recognition(self):
        assert CNF([(1, -2), (2,)]).is_2cnf()
        assert not CNF([(1, 2, 3)]).is_2cnf()

    def test_satisfied_by(self):
        f = CNF([(1, -2)])
        assert f.satisfied_by({1: True, 2: True})
        assert not f.satisfied_by({1: False, 2: True})


class TestHornSat:
    def test_minimal_model(self):
        f = CNF([(1,), (-1, 2), (-2, 3)])
        model = horn_sat(f)
        assert model == {1: True, 2: True, 3: True}

    def test_everything_false_when_possible(self):
        f = CNF([(-1, -2)])
        assert horn_sat(f) == {1: False, 2: False}

    def test_unsat(self):
        f = CNF([(1,), (-1,)])
        assert horn_sat(f) is None

    def test_non_horn_rejected(self):
        with pytest.raises(DomainError):
            horn_sat(CNF([(1, 2)]))


class TestTwoSat:
    def test_implication_cycle_sat(self):
        f = CNF([(1, 2), (-1, 2), (1, -2)])
        model = two_sat(f)
        assert model is not None and f.satisfied_by(model)

    def test_contradiction(self):
        f = CNF([(1,), (-1,)])
        assert two_sat(f) is None

    def test_forced_chain(self):
        f = CNF([(1,), (-1, 2), (-2, 3)])
        model = two_sat(f)
        assert model is not None
        assert model[1] and model[2] and model[3]

    def test_oversized_clause_rejected(self):
        with pytest.raises(DomainError):
            two_sat(CNF([(1, 2, 3)]))

    def test_empty_clause_unsat(self):
        assert two_sat(CNF([()])) is None


class TestDPLL:
    def test_basic_sat(self):
        model = dpll(CNF([(1, 2, 3), (-1, -2), (-3,)]))
        assert model is not None

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: p1 ∧ p2 ∧ (¬p1 ∨ ¬p2).
        assert dpll(CNF([(1,), (2,), (-1, -2)])) is None

    def test_empty_formula_sat(self):
        assert dpll(CNF([])) == {}


def random_clauses(max_var=5, max_clauses=8, max_size=3):
    literal = st.integers(1, max_var).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    return st.lists(
        st.lists(literal, min_size=1, max_size=max_size).map(tuple),
        max_size=max_clauses,
    )


@settings(max_examples=80, deadline=None)
@given(random_clauses(max_size=2))
def test_two_sat_matches_dpll(clauses):
    f = CNF(clauses)
    a, b = two_sat(f), dpll(f)
    assert (a is None) == (b is None)
    if a is not None:
        assert f.satisfied_by(a)


@settings(max_examples=80, deadline=None)
@given(random_clauses())
def test_horn_matches_dpll_when_horn(clauses):
    f = CNF(clauses)
    if not f.is_horn():
        return
    a, b = horn_sat(f), dpll(f)
    assert (a is None) == (b is None)
    if a is not None:
        assert f.satisfied_by(a)


@settings(max_examples=50, deadline=None)
@given(random_clauses(max_var=4, max_clauses=5))
def test_cnf_to_csp_preserves_satisfiability(clauses):
    f = CNF(clauses)
    if not f.clauses:
        return
    inst = cnf_to_csp(f)
    assert brute.is_solvable(inst) == (dpll(f) is not None)


@settings(max_examples=50, deadline=None)
@given(random_clauses(max_var=4, max_clauses=5))
def test_horn_model_is_minimal(clauses):
    """The Horn model sets a minimal set of variables true: flipping any
    true variable to false (keeping others) must break some clause or the
    model of the remaining ones (spot-check minimality pointwise)."""
    f = CNF(clauses)
    if not f.is_horn():
        return
    model = horn_sat(f)
    if model is None:
        return
    for v, value in model.items():
        if value:
            flipped = dict(model)
            flipped[v] = False
            assert not f.satisfied_by(flipped)
