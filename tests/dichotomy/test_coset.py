"""Group-theoretic (coset / Mal'tsev) tractability over Z_p."""

import random
from itertools import product

import pytest

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute
from repro.dichotomy.boolean_solvers import solve_affine
from repro.dichotomy.coset import (
    coset_linear_system,
    is_coset_instance,
    is_coset_relation,
    maltsev,
    solve_coset_csp,
)
from repro.errors import DomainError, SolverError


def linear_relation(coefficients, rhs, p):
    """Solution set of Σ aᵢ xᵢ = rhs (mod p)."""
    arity = len(coefficients)
    return frozenset(
        row
        for row in product(range(p), repeat=arity)
        if sum(a * v for a, v in zip(coefficients, row)) % p == rhs
    )


class TestCosetRecognition:
    def test_maltsev_operation(self):
        op = maltsev(5)
        assert op(3, 4, 2) == 1
        assert op(0, 4, 0) == 1

    def test_linear_solution_sets_are_cosets(self):
        for p in (2, 3, 5):
            rel = linear_relation((1, 1), 1, p)
            assert is_coset_relation(rel, p)

    def test_non_coset_rejected(self):
        # OR over Z_2 is not affine/coset.
        assert not is_coset_relation({(0, 1), (1, 0), (1, 1)}, 2)

    def test_empty_not_a_coset(self):
        assert not is_coset_relation(set(), 3)

    def test_singleton_is_a_coset(self):
        assert is_coset_relation({(2, 1)}, 3)

    def test_full_space_is_a_coset(self):
        full = set(product(range(3), repeat=2))
        assert is_coset_relation(full, 3)

    def test_modulus_must_be_prime(self):
        with pytest.raises(DomainError):
            is_coset_relation({(0,)}, 4)

    def test_out_of_range_values_rejected(self):
        with pytest.raises(DomainError):
            is_coset_relation({(5,)}, 3)


class TestLinearSystemExtraction:
    def test_recovers_equation(self):
        rel = linear_relation((1, 2), 1, 3)
        system = coset_linear_system(("x", "y"), rel, 3)
        assert system is not None
        # x + 2y = 1 (or a scalar multiple) must be among the equations.
        solutions = {
            row
            for row in product(range(3), repeat=2)
            if all(
                sum(a * v for a, v in zip(coeffs, row)) % 3 == rhs
                for coeffs, rhs in system
            )
        }
        assert solutions == set(rel)

    def test_none_for_non_coset(self):
        assert coset_linear_system(("x", "y"), frozenset({(0, 1), (1, 1), (1, 0)}), 2) is None


class TestSolver:
    def test_simple_system_mod3(self):
        # x + y = 1, y + z = 2 over Z_3.
        inst = CSPInstance(
            ["x", "y", "z"],
            range(3),
            [
                Constraint(("x", "y"), linear_relation((1, 1), 1, 3)),
                Constraint(("y", "z"), linear_relation((1, 1), 2, 3)),
            ],
        )
        assert is_coset_instance(inst, 3)
        solution = solve_coset_csp(inst, 3)
        assert solution is not None
        assert (solution["x"] + solution["y"]) % 3 == 1
        assert (solution["y"] + solution["z"]) % 3 == 2

    def test_inconsistent_system(self):
        # x + y = 0 and x + y = 1 over Z_3.
        inst = CSPInstance(
            ["x", "y"],
            range(3),
            [
                Constraint(("x", "y"), linear_relation((1, 1), 0, 3)),
                Constraint(("x", "y"), linear_relation((1, 1), 1, 3)),
            ],
        )
        # Normalization intersects the two relations to ∅.
        assert solve_coset_csp(inst, 3) is None

    def test_non_coset_raises(self):
        inst = CSPInstance(
            ["x", "y"], (0, 1), [Constraint(("x", "y"), {(0, 1), (1, 0), (1, 1)})]
        )
        with pytest.raises(SolverError):
            solve_coset_csp(inst, 2)

    @pytest.mark.parametrize("p", [2, 3, 5])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, p, seed):
        rng = random.Random(seed * 10 + p)
        n = rng.randint(2, 4)
        variables = list(range(n))
        constraints = []
        for _ in range(rng.randint(1, 3)):
            arity = rng.randint(1, min(2, n))
            scope = tuple(rng.sample(variables, arity))
            coeffs = tuple(rng.randint(0, p - 1) for _ in range(arity))
            if not any(coeffs):
                coeffs = (1,) + coeffs[1:]
            constraints.append(
                Constraint(scope, linear_relation(coeffs, rng.randint(0, p - 1), p))
            )
        inst = CSPInstance(variables, range(p), constraints)
        solution = solve_coset_csp(inst, p)
        assert (solution is not None) == brute.is_solvable(inst)
        if solution is not None:
            assert inst.is_solution(solution)

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_affine_solver_mod2(self, seed):
        """Over Z_2 the coset machinery is exactly Schaefer's affine class."""
        from repro.generators.sat import random_affine_instance

        inst = random_affine_instance(5, 4, seed=seed)
        assert is_coset_instance(inst, 2)
        a = solve_affine(inst)
        c = solve_coset_csp(inst, 2)
        assert (a is None) == (c is None)
