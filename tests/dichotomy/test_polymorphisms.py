"""Polymorphism machinery."""

import pytest

from repro.dichotomy.polymorphisms import (
    boolean_max,
    boolean_min,
    constant_operation,
    find_polymorphisms,
    is_polymorphism,
    majority,
    minority,
    projection_operation,
    relation_closed_under,
)
from repro.relational.structure import Structure


def template(relation, arity=2):
    return Structure({"R": arity}, [0, 1], {"R": relation})


class TestOperations:
    def test_majority_over_any_domain(self):
        assert majority("a", "a", "b") == "a"
        assert majority("a", "b", "b") == "b"
        assert majority("a", "b", "a") == "a"
        assert majority("a", "b", "c") == "a"

    def test_minority(self):
        assert minority(1, 1, 0) == 0
        assert minority(1, 0, 0) == 1
        assert minority(1, 1, 1) == 1


class TestClosure:
    def test_empty_relation_closed_under_everything(self):
        assert relation_closed_under([], boolean_min, 2)
        assert relation_closed_under([], majority, 3)

    def test_xor_closed_under_minority_not_min(self):
        xor = {(0, 1), (1, 0)}
        assert relation_closed_under(xor, minority, 3)
        assert not relation_closed_under(xor, boolean_min, 2)

    def test_implies_closed_under_min_and_max(self):
        implies = {(0, 0), (0, 1), (1, 1)}
        assert relation_closed_under(implies, boolean_min, 2)
        assert relation_closed_under(implies, boolean_max, 2)


class TestIsPolymorphism:
    def test_projections_always_polymorphisms(self):
        s = template({(0, 1), (1, 0)})
        for pos in (0, 1):
            assert is_polymorphism(projection_operation(2, pos), s, 2)

    def test_constant_polymorphism_iff_valid(self):
        nand = template({(0, 0), (0, 1), (1, 0)})
        assert is_polymorphism(constant_operation(0), nand, 1)
        assert not is_polymorphism(constant_operation(1), nand, 1)

    def test_checks_all_relations(self):
        s = Structure(
            {"R": 2, "S": 2},
            [0, 1],
            {"R": {(0, 0), (1, 1)}, "S": {(0, 1), (1, 0)}},
        )
        # min preserves R (eq) but not S (xor).
        assert not is_polymorphism(boolean_min, s, 2)


class TestFindPolymorphisms:
    def test_unary_polymorphisms_of_equality(self):
        s = template({(0, 0), (1, 1)})
        tables = find_polymorphisms(s, 1)
        # Every unary operation preserves equality: 4 of them on {0,1}.
        assert len(tables) == 4

    def test_unary_polymorphisms_of_lt(self):
        s = template({(0, 1)})
        tables = find_polymorphisms(s, 1)
        # Need f(0)=0 implies... (f(0), f(1)) must be (0,1): identity only.
        assert tables == [{(0,): 0, (1,): 1}]

    def test_binary_polymorphisms_contain_projections(self):
        s = template({(0, 1), (1, 0)})
        tables = find_polymorphisms(s, 2)
        proj1 = {(a, b): a for a in (0, 1) for b in (0, 1)}
        proj2 = {(a, b): b for a in (0, 1) for b in (0, 1)}
        assert proj1 in tables and proj2 in tables
