"""Hell–Nešetřil dichotomy: classification and the dispatching solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dichotomy.hcoloring import (
    HColoringClass,
    classify_target,
    graph_to_structure,
    is_hcolorable,
    solve_hcoloring,
    structure_to_graph,
)
from repro.generators.graphs import complete_graph, cycle_graph, path_graph, random_graph
from repro.relational.homomorphism import is_homomorphism
from repro.width.graph import Graph


class TestClassify:
    def test_loop_is_trivial(self):
        h = Graph(vertices=[0])
        assert classify_target(h, frozenset({0})) is HColoringClass.TRIVIAL

    def test_edgeless_is_trivial(self):
        assert classify_target(Graph(vertices=[0, 1])) is HColoringClass.TRIVIAL

    def test_bipartite_is_polynomial(self):
        assert classify_target(cycle_graph(4)) is HColoringClass.POLYNOMIAL
        assert classify_target(complete_graph(2)) is HColoringClass.POLYNOMIAL

    def test_odd_cycle_np_complete(self):
        assert classify_target(cycle_graph(5)) is HColoringClass.NP_COMPLETE
        assert classify_target(complete_graph(3)) is HColoringClass.NP_COMPLETE


class TestSolve:
    def test_loop_absorbs_everything(self):
        g = complete_graph(5)
        h = Graph(vertices=["v"])
        mapping = solve_hcoloring(g, h, frozenset({"v"}))
        assert mapping == {v: "v" for v in g.vertices}

    def test_edgeless_target(self):
        h = Graph(vertices=[0, 1])
        assert solve_hcoloring(path_graph(1), h) is not None
        assert solve_hcoloring(path_graph(3), h) is None

    def test_bipartite_target_on_bipartite_input(self):
        mapping = solve_hcoloring(cycle_graph(6), complete_graph(2))
        assert mapping is not None
        for u, v in cycle_graph(6).edges():
            assert mapping[u] != mapping[v]

    def test_bipartite_target_on_odd_cycle(self):
        assert solve_hcoloring(cycle_graph(5), complete_graph(2)) is None

    def test_k3_coloring(self):
        assert is_hcolorable(cycle_graph(5), complete_graph(3))
        assert not is_hcolorable(complete_graph(4), complete_graph(3))

    def test_c5_into_c5(self):
        assert is_hcolorable(cycle_graph(5), cycle_graph(5))

    def test_c7_into_c5(self):
        # Odd girth: C7 admits a homomorphism into C5? No — hom C_{2k+1} →
        # C_{2j+1} exists iff k >= j... C7 (k=3) → C5 (j=2): yes it exists.
        assert is_hcolorable(cycle_graph(7), cycle_graph(5))
        # But C5 → C7 does not (girth obstruction).
        assert not is_hcolorable(cycle_graph(5), cycle_graph(7))

    def test_disconnected_input(self):
        g = Graph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        mapping = solve_hcoloring(g, complete_graph(2))
        assert mapping is not None
        assert mapping[0] != mapping[1] and mapping[2] != mapping[3]


class TestConverters:
    def test_round_trip(self):
        g = cycle_graph(4)
        s = graph_to_structure(g, frozenset())
        g2, loops = structure_to_graph(s)
        assert g2.vertices == g.vertices
        assert {frozenset(e) for e in g2.edges()} == {frozenset(e) for e in g.edges()}
        assert not loops

    def test_loops_preserved(self):
        g = Graph(vertices=[0, 1], edges=[(0, 1)])
        s = graph_to_structure(g, frozenset({0}))
        _g2, loops = structure_to_graph(s)
        assert loops == frozenset({0})


edge_sets = st.sets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda e: e[0] != e[1]),
    max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(edge_sets)
def test_solver_output_is_a_homomorphism(edges):
    g = Graph(vertices=range(5), edges=edges)
    for h, loops in [
        (complete_graph(2), frozenset()),
        (complete_graph(3), frozenset()),
        (cycle_graph(5), frozenset()),
    ]:
        mapping = solve_hcoloring(g, h, loops)
        if mapping is not None:
            assert is_homomorphism(
                mapping, graph_to_structure(g), graph_to_structure(h, loops)
            )


@settings(max_examples=30, deadline=None)
@given(edge_sets)
def test_k2_solver_matches_bipartiteness(edges):
    g = Graph(vertices=range(5), edges=edges)
    assert is_hcolorable(g, complete_graph(2)) == g.is_bipartite()
