"""Conflict-directed backjumping: correctness and jump behavior."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import backjumping, brute
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import complete_graph, cycle_graph, path_graph


class TestBasics:
    def test_solvable(self):
        inst = coloring_instance(cycle_graph(6), 2)
        solution = backjumping.solve(inst)
        assert solution is not None and inst.is_solution(solution)

    def test_unsolvable(self):
        inst = coloring_instance(cycle_graph(5), 2)
        assert backjumping.solve(inst) is None

    def test_no_variables(self):
        assert backjumping.solve(CSPInstance([], [0], [])) == {}

    def test_empty_domain(self):
        assert backjumping.solve(CSPInstance(["x"], [], [])) is None

    def test_unary_constraints(self):
        inst = CSPInstance(
            ["x", "y"], [0, 1], [Constraint(("x",), [(1,)]), Constraint(("y",), [(0,)])]
        )
        assert backjumping.solve(inst) == {"x": 1, "y": 0}

    def test_stats_recorded(self):
        inst = coloring_instance(complete_graph(4), 3)
        stats = backjumping.solve_with_stats(inst)
        assert stats.solution is None
        assert stats.nodes > 0


class TestJumps:
    def test_jumps_on_disconnected_conflict(self):
        """Variables a,b are free; the conflict lives entirely in c,d,e.
        A chronological backtracker would re-enumerate a,b; CBJ jumps."""
        ne = {(0, 1), (1, 0)}
        inst = CSPInstance(
            ["a", "b", "c", "d", "e"],
            [0, 1],
            [
                Constraint(("c", "d"), ne),
                Constraint(("d", "e"), ne),
                Constraint(("c", "e"), ne),  # odd triangle: unsatisfiable
            ],
        )
        stats = backjumping.solve_with_stats(inst)
        assert stats.solution is None
        # The connectivity-aware order puts the triangle first, so the run
        # refutes it quickly; nodes stay far below exhaustive 2^5 levels.
        assert stats.nodes <= 24


@pytest.mark.parametrize("seed", range(15))
def test_matches_brute_force(seed):
    inst = random_binary_csp(5, 3, 6, 0.35 + (seed % 5) * 0.12, seed=seed)
    assert backjumping.is_solvable(inst) == brute.is_solvable(inst)


@st.composite
def tiny_instances(draw):
    n = draw(st.integers(1, 4))
    variables = list(range(n))
    constraints = []
    for _ in range(draw(st.integers(0, 4))):
        arity = draw(st.integers(1, min(3, n)))
        scope = tuple(draw(st.permutations(variables))[:arity])
        rows = draw(st.lists(st.tuples(*[st.integers(0, 1)] * arity), max_size=5))
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, [0, 1], constraints)


@settings(max_examples=70, deadline=None)
@given(tiny_instances())
def test_backjumping_property(instance):
    expected = brute.is_solvable(instance)
    assert backjumping.is_solvable(instance) == expected
    solution = backjumping.solve(instance)
    if solution is not None:
        assert instance.normalize().is_solution(solution)
