"""Solution counting by sum-product DP over tree decompositions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute
from repro.csp.solvers.decomposition import count_solutions
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph, path_graph


class TestKnownCounts:
    def test_chromatic_polynomial_of_cycles(self):
        """#proper q-colorings of C_n = (q-1)^n + (-1)^n (q-1)."""
        for n, q in [(4, 2), (5, 3), (6, 2), (6, 3)]:
            expected = (q - 1) ** n + (-1) ** n * (q - 1)
            inst = coloring_instance(cycle_graph(n), q)
            assert count_solutions(inst) == expected

    def test_chromatic_polynomial_of_paths(self):
        """#proper q-colorings of P_n = q (q-1)^(n-1)."""
        for n, q in [(3, 2), (4, 3), (5, 2)]:
            inst = coloring_instance(path_graph(n), q)
            assert count_solutions(inst) == q * (q - 1) ** (n - 1)

    def test_unsatisfiable_counts_zero(self):
        assert count_solutions(coloring_instance(cycle_graph(5), 2)) == 0

    def test_unconstrained_variables_multiply(self):
        inst = CSPInstance(["x", "y"], [0, 1, 2], [Constraint(("x",), [(0,)])])
        assert count_solutions(inst) == 3  # x pinned, y free over 3 values

    def test_no_constraints(self):
        inst = CSPInstance(["x", "y"], [0, 1], [])
        assert count_solutions(inst) == 4

    def test_no_variables(self):
        assert count_solutions(CSPInstance([], [0], [])) == 1


@pytest.mark.parametrize("seed", range(12))
def test_counts_match_brute_force(seed):
    inst = random_binary_csp(5, 2, 5, 0.3 + (seed % 4) * 0.15, seed=seed)
    assert count_solutions(inst) == brute.count_solutions(inst)


@st.composite
def tiny_instances(draw):
    n = draw(st.integers(1, 4))
    variables = list(range(n))
    constraints = []
    for _ in range(draw(st.integers(0, 3))):
        arity = draw(st.integers(1, min(2, n)))
        scope = tuple(draw(st.permutations(variables))[:arity])
        rows = draw(st.lists(st.tuples(*[st.integers(0, 1)] * arity), max_size=4))
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, [0, 1], constraints)


@settings(max_examples=60, deadline=None)
@given(tiny_instances())
def test_counting_property(instance):
    assert count_solutions(instance) == brute.count_solutions(instance)
