"""The portfolio solver: routing and correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import brute
from repro.csp.solvers.portfolio import Route, explain, is_solvable, solve
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import complete_graph, cycle_graph, partial_ktree, path_graph
from repro.generators.sat import random_horn, random_one_in_three_instance
from repro.dichotomy.cnf import cnf_to_csp


class TestRouting:
    def test_trivial(self):
        assert explain(CSPInstance([], [0], [])) == Route.TRIVIAL
        assert explain(CSPInstance(["x"], [0, 1], [])) == Route.TRIVIAL

    def test_schaefer_route(self):
        inst = cnf_to_csp(random_horn(5, 8, seed=1))
        assert explain(inst) == Route.SCHAEFER

    def test_coset_route(self):
        from itertools import product

        eq_mod3 = frozenset(
            r for r in product(range(3), repeat=2) if (r[0] + r[1]) % 3 == 1
        )
        # A cyclic constraint graph keeps it away from the acyclic route; a
        # non-Boolean prime domain with coset relations routes to GF(3).
        inst = CSPInstance(
            ["x", "y", "z"],
            range(3),
            [
                Constraint(("x", "y"), eq_mod3),
                Constraint(("y", "z"), eq_mod3),
                Constraint(("x", "z"), eq_mod3),
            ],
        )
        assert explain(inst) == Route.COSET

    def test_acyclic_route(self):
        inst = coloring_instance(path_graph(5), 3)
        assert explain(inst) == Route.ACYCLIC

    def test_treewidth_route(self):
        inst = coloring_instance(cycle_graph(6), 3)
        assert explain(inst) == Route.TREEWIDTH

    def test_search_route(self):
        inst = coloring_instance(complete_graph(7), 3)
        assert explain(inst) == Route.SEARCH

    def test_one_in_three_not_schaefer(self):
        inst = random_one_in_three_instance(6, 4, seed=0)
        assert explain(inst) != Route.SCHAEFER


class TestCorrectness:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: coloring_instance(cycle_graph(5), 2), False),
            (lambda: coloring_instance(cycle_graph(6), 2), True),
            (lambda: coloring_instance(path_graph(5), 2), True),
            (lambda: coloring_instance(complete_graph(4), 3), False),
            (lambda: coloring_instance(partial_ktree(10, 2, 0.9, seed=3), 3), None),
        ],
    )
    def test_workloads(self, builder, expected):
        inst = builder()
        verdict = is_solvable(inst)
        if expected is None:
            expected = brute.is_solvable(inst) if len(inst.variables) <= 10 else verdict
        assert verdict == expected
        solution = solve(inst)
        if solution is not None:
            assert inst.normalize().is_solution(solution)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        inst = random_binary_csp(5, 3, 6, 0.3 + (seed % 5) * 0.12, seed=seed)
        assert is_solvable(inst) == brute.is_solvable(inst)

    def test_trivial_solutions(self):
        assert solve(CSPInstance([], [0], [])) == {}
        assert solve(CSPInstance(["x"], [0, 1], [])) == {"x": 0}
        assert solve(CSPInstance(["x"], [], [])) is None


@st.composite
def tiny_instances(draw):
    n = draw(st.integers(1, 4))
    variables = list(range(n))
    constraints = []
    for _ in range(draw(st.integers(0, 4))):
        arity = draw(st.integers(1, min(2, n)))
        scope = tuple(draw(st.permutations(variables))[:arity])
        rows = draw(st.lists(st.tuples(*[st.integers(0, 1)] * arity), max_size=4))
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, [0, 1], constraints)


@settings(max_examples=60, deadline=None)
@given(tiny_instances())
def test_portfolio_property(instance):
    assert is_solvable(instance) == brute.is_solvable(instance)
    solution = solve(instance)
    if solution is not None:
        assert instance.normalize().is_solution(solution)
