"""CSP instances: semantics and Section 2's normalizations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.errors import ArityError, DomainError

NE = {(0, 1), (1, 0)}


class TestConstraint:
    def test_basic(self):
        c = Constraint(("x", "y"), NE)
        assert c.arity == 2
        assert c.variables() == frozenset({"x", "y"})

    def test_arity_mismatch(self):
        with pytest.raises(ArityError):
            Constraint(("x",), [(1, 2)])

    def test_satisfied_by(self):
        c = Constraint(("x", "y"), NE)
        assert c.satisfied_by({"x": 0, "y": 1})
        assert not c.satisfied_by({"x": 0, "y": 0})

    def test_consistent_with_partial(self):
        c = Constraint(("x", "y"), NE)
        assert c.consistent_with({"x": 0})
        assert c.consistent_with({})
        assert not c.consistent_with({"x": 0, "y": 0})

    def test_equality_and_hash(self):
        assert Constraint(("x",), [(0,)]) == Constraint(("x",), {(0,)})
        assert hash(Constraint(("x",), [(0,)])) == hash(Constraint(("x",), [(0,)]))

    def test_repeated_scope_variable_allowed_pre_normalization(self):
        c = Constraint(("x", "x"), [(0, 0), (0, 1)])
        assert c.arity == 2


class TestCSPInstance:
    def test_basic(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), NE)])
        assert inst.is_solution({"x": 0, "y": 1})
        assert not inst.is_solution({"x": 0, "y": 0})

    def test_rejects_duplicate_variables(self):
        with pytest.raises(DomainError):
            CSPInstance(["x", "x"], [0], [])

    def test_rejects_unknown_scope_variable(self):
        with pytest.raises(DomainError):
            CSPInstance(["x"], [0], [Constraint(("z",), [(0,)])])

    def test_rejects_out_of_domain_constraint_value(self):
        with pytest.raises(DomainError):
            CSPInstance(["x"], [0], [Constraint(("x",), [(7,)])])

    def test_solution_must_be_total(self):
        inst = CSPInstance(["x", "y"], [0, 1], [])
        assert not inst.is_solution({"x": 0})

    def test_solution_must_stay_in_domain(self):
        inst = CSPInstance(["x"], [0, 1], [])
        assert not inst.is_solution({"x": 5})

    def test_partial_solution(self):
        inst = CSPInstance(["x", "y", "z"], [0, 1], [Constraint(("x", "y"), NE)])
        assert inst.is_partial_solution({"x": 0})
        assert inst.is_partial_solution({"x": 0, "y": 1})
        assert not inst.is_partial_solution({"x": 0, "y": 0})
        # A constraint whose scope is not fully covered is ignored.
        assert inst.is_partial_solution({"y": 0, "z": 0})

    def test_constraints_on(self):
        c1 = Constraint(("x", "y"), NE)
        c2 = Constraint(("y",), [(0,)])
        inst = CSPInstance(["x", "y"], [0, 1], [c1, c2])
        assert inst.constraints_on("x") == [c1]
        assert set(inst.constraints_on("y")) == {c1, c2}

    def test_max_arity_and_size(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), NE)])
        assert inst.max_arity() == 2
        assert inst.size() == 2 + 2 + 4


class TestNormalization:
    def test_consolidates_same_scope(self):
        c1 = Constraint(("x", "y"), {(0, 1), (1, 0)})
        c2 = Constraint(("x", "y"), {(0, 1), (1, 1)})
        inst = CSPInstance(["x", "y"], [0, 1], [c1, c2]).normalize()
        assert len(inst.constraints) == 1
        assert inst.constraints[0].relation == frozenset({(0, 1)})

    def test_removes_repeated_scope_variables(self):
        # (x, x) with R = {(0,0), (0,1)}: rows disagreeing on the repeats drop.
        c = Constraint(("x", "x"), {(0, 0), (0, 1)})
        inst = CSPInstance(["x"], [0, 1], [c]).normalize()
        assert inst.constraints[0].scope == ("x",)
        assert inst.constraints[0].relation == frozenset({(0,)})

    def test_normalization_preserves_solutions(self):
        c = Constraint(("x", "x", "y"), {(0, 0, 1), (0, 1, 1), (1, 1, 0)})
        inst = CSPInstance(["x", "y"], [0, 1], [c])
        norm = inst.normalize()
        for x in (0, 1):
            for y in (0, 1):
                assignment = {"x": x, "y": y}
                assert inst.is_solution(assignment) == norm.is_solution(assignment)

    def test_is_normalized(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), NE)])
        assert inst.is_normalized()
        dup = CSPInstance(
            ["x", "y"], [0, 1], [Constraint(("x", "y"), NE), Constraint(("x", "y"), NE)]
        )
        assert not dup.is_normalized()
        rep = CSPInstance(["x"], [0, 1], [Constraint(("x", "x"), [(0, 0)])])
        assert not rep.is_normalized()

    def test_normalize_is_idempotent(self):
        inst = CSPInstance(
            ["x", "y"], [0, 1], [Constraint(("x", "y"), NE), Constraint(("x", "y"), NE)]
        )
        once = inst.normalize()
        twice = once.normalize()
        assert [c.scope for c in once.constraints] == [c.scope for c in twice.constraints]
        assert once.is_normalized()


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 4))
    variables = list(range(n))
    constraints = []
    for _ in range(draw(st.integers(0, 4))):
        arity = draw(st.integers(1, 3))
        scope = tuple(draw(st.sampled_from(variables)) for _ in range(arity))
        rows = draw(
            st.lists(st.tuples(*[st.integers(0, 1)] * arity), max_size=6)
        )
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, [0, 1], constraints)


@settings(max_examples=80, deadline=None)
@given(random_instance())
def test_normalize_preserves_solution_set(instance):
    from itertools import product

    norm = instance.normalize()
    assert norm.is_normalized()
    for values in product([0, 1], repeat=len(instance.variables)):
        assignment = dict(zip(instance.variables, values))
        assert instance.is_solution(assignment) == norm.is_solution(assignment)
