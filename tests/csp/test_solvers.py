"""Cross-solver differential tests: every solver decides the same problem.

Proposition 2.1 (join evaluation), Theorem 4.7 (k-consistency), and
Theorem 6.2 (tree decomposition) are all exercised against the brute-force
oracle and against each other.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import backtracking, brute, consistency, decomposition, join
from repro.csp.solvers.backtracking import Inference
from repro.csp.solvers.consistency import Verdict
from repro.errors import UnsatisfiableError
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph, complete_graph, path_graph

NE2 = {(0, 1), (1, 0)}


def triangle_2col():
    return CSPInstance(
        ["a", "b", "c"],
        [0, 1],
        [Constraint(s, NE2) for s in [("a", "b"), ("b", "c"), ("a", "c")]],
    )


class TestBrute:
    def test_unsolvable(self):
        assert brute.solve(triangle_2col()) is None

    def test_counts(self):
        path = CSPInstance(
            ["a", "b"], [0, 1], [Constraint(("a", "b"), NE2)]
        )
        assert brute.count_solutions(path) == 2

    def test_no_constraints(self):
        inst = CSPInstance(["x"], [0, 1], [])
        assert brute.count_solutions(inst) == 2


class TestBacktracking:
    @pytest.mark.parametrize("inference", list(Inference))
    def test_unsolvable_all_inference_levels(self, inference):
        assert backtracking.solve(triangle_2col(), inference) is None

    @pytest.mark.parametrize("inference", list(Inference))
    def test_solvable_all_inference_levels(self, inference):
        inst = coloring_instance(cycle_graph(5), 3)
        solution = backtracking.solve(inst, inference)
        assert solution is not None
        assert inst.is_solution(solution)

    def test_stats_reported(self):
        stats = backtracking.solve_with_stats(triangle_2col())
        assert stats.solution is None
        assert stats.nodes > 0

    def test_mac_prunes_more_than_plain(self):
        inst = coloring_instance(complete_graph(4), 3)  # unsolvable
        plain = backtracking.solve_with_stats(inst, Inference.NONE)
        mac = backtracking.solve_with_stats(inst, Inference.MAC)
        assert plain.solution is None and mac.solution is None
        assert mac.nodes <= plain.nodes

    def test_empty_relation_immediately_unsat(self):
        inst = CSPInstance(["x"], [0], [Constraint(("x",), [])])
        for inf in Inference:
            assert backtracking.solve(inst, inf) is None


class TestJoin:
    def test_proposition_2_1_on_triangle(self):
        assert not join.is_solvable(triangle_2col())
        assert join.join_of_constraints(triangle_2col()).tuples == frozenset()

    def test_solution_extraction(self):
        inst = coloring_instance(path_graph(4), 2)
        solution = join.solve(inst)
        assert solution is not None and inst.is_solution(solution)

    def test_unconstrained_variables_filled(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x",), [(1,)])])
        solutions = list(join.all_solutions(inst))
        assert len(solutions) == 2
        assert all(s["x"] == 1 for s in solutions)

    def test_no_constraints(self):
        inst = CSPInstance(["x"], [0, 1], [])
        assert join.is_solvable(inst)
        assert len(list(join.all_solutions(inst))) == 2

    def test_no_variables(self):
        inst = CSPInstance([], [], [])
        assert join.is_solvable(inst)

    def test_require_solution_raises(self):
        with pytest.raises(UnsatisfiableError):
            join.require_solution(triangle_2col())


class TestConsistency:
    def test_triangle_2col_needs_k3(self):
        # Strong 2-consistency holds on the triangle; 3 pebbles refute it.
        assert consistency.solve_decision(triangle_2col(), 2) is Verdict.CONSISTENT
        assert consistency.solve_decision(triangle_2col(), 3) is Verdict.UNSATISFIABLE

    def test_even_cycle_consistent_and_solvable(self):
        inst = coloring_instance(cycle_graph(6), 2)
        assert consistency.solve_decision(inst, 3) is Verdict.CONSISTENT
        assert consistency.is_solvable(inst, 3)

    def test_full_solver_produces_solution(self):
        inst = coloring_instance(path_graph(5), 2)
        solution = consistency.solve(inst, 2)
        assert solution is not None and inst.is_solution(solution)

    def test_refutation_is_sound_on_random_instances(self):
        for seed in range(15):
            inst = random_binary_csp(5, 2, 6, 0.5, seed=seed)
            if consistency.solve_decision(inst, 2) is Verdict.UNSATISFIABLE:
                assert not brute.is_solvable(inst)


class TestDecomposition:
    def test_triangle(self):
        assert decomposition.solve(triangle_2col()) is None

    def test_path_solved(self):
        inst = coloring_instance(path_graph(6), 2)
        solution = decomposition.solve(inst)
        assert solution is not None and inst.is_solution(solution)

    def test_cycle_coloring(self):
        for n, colors, expected in [(5, 2, False), (6, 2, True), (5, 3, True)]:
            inst = coloring_instance(cycle_graph(n), colors)
            assert decomposition.is_solvable(inst) == expected

    def test_unconstrained_variable(self):
        inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x",), [(0,)])])
        solution = decomposition.solve(inst)
        assert solution is not None and solution["x"] == 0 and "y" in solution

    def test_empty_variables(self):
        assert decomposition.solve(CSPInstance([], [], [])) == {}


ALL_DECIDERS = [
    ("brute", brute.is_solvable),
    ("backtracking-none", lambda i: backtracking.is_solvable(i, Inference.NONE)),
    ("backtracking-fc", lambda i: backtracking.is_solvable(i, Inference.FORWARD_CHECKING)),
    ("backtracking-mac", lambda i: backtracking.is_solvable(i, Inference.MAC)),
    ("join", join.is_solvable),
    ("consistency-k2", lambda i: consistency.is_solvable(i, 2)),
    ("decomposition", decomposition.is_solvable),
]


@pytest.mark.parametrize("seed", range(12))
def test_all_solvers_agree_on_random_instances(seed):
    inst = random_binary_csp(
        n_variables=5, domain_size=3, n_constraints=6, tightness=0.4 + (seed % 4) * 0.1,
        seed=seed,
    )
    expected = brute.is_solvable(inst)
    for name, decide in ALL_DECIDERS:
        assert decide(inst) == expected, name


@st.composite
def tiny_instances(draw):
    n = draw(st.integers(1, 4))
    variables = list(range(n))
    constraints = []
    for _ in range(draw(st.integers(0, 4))):
        arity = draw(st.integers(1, min(2, n)))
        scope = tuple(draw(st.permutations(variables))[:arity])
        rows = draw(st.lists(st.tuples(*[st.integers(0, 1)] * arity), max_size=4))
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, [0, 1], constraints)


@settings(max_examples=50, deadline=None)
@given(tiny_instances())
def test_solvers_agree_property(instance):
    expected = brute.is_solvable(instance)
    assert join.is_solvable(instance) == expected
    assert backtracking.is_solvable(instance) == expected
    assert decomposition.is_solvable(instance) == expected


@settings(max_examples=50, deadline=None)
@given(tiny_instances())
def test_solutions_produced_are_valid(instance):
    for solver in (backtracking.solve, join.solve, decomposition.solve):
        solution = solver(instance)
        if solution is not None:
            assert instance.normalize().is_solution(solution)
