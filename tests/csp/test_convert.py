"""The Section 2 equivalence: CSP ⟺ homomorphism problem."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.convert import csp_to_homomorphism, homomorphism_to_csp
from repro.csp.instance import Constraint, CSPInstance
from repro.relational.homomorphism import all_homomorphisms, is_homomorphism
from repro.relational.structure import Structure

NE = {(0, 1), (1, 0)}


def triangle_instance():
    return CSPInstance(
        ["a", "b", "c"],
        [0, 1, 2],
        [
            Constraint(("a", "b"), {(x, y) for x in range(3) for y in range(3) if x != y}),
            Constraint(("b", "c"), {(x, y) for x in range(3) for y in range(3) if x != y}),
            Constraint(("a", "c"), {(x, y) for x in range(3) for y in range(3) if x != y}),
        ],
    )


class TestCspToHomomorphism:
    def test_domains(self):
        a, b = csp_to_homomorphism(triangle_instance())
        assert a.domain == frozenset({"a", "b", "c"})
        assert b.domain == frozenset({0, 1, 2})

    def test_identical_relations_share_a_symbol(self):
        a, b = csp_to_homomorphism(triangle_instance())
        # All three constraints use the same disequality relation.
        assert len(a.vocabulary) == 1
        symbol = next(iter(a.vocabulary))
        assert len(a.relation(symbol)) == 3

    def test_distinct_relations_get_distinct_symbols(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x", "y"), NE), Constraint(("y", "x"), {(0, 0)})],
        )
        a, _b = csp_to_homomorphism(inst)
        assert len(a.vocabulary) == 2

    def test_solutions_are_exactly_homomorphisms(self):
        inst = triangle_instance()
        a, b = csp_to_homomorphism(inst)
        homs = {tuple(sorted(h.items())) for h in all_homomorphisms(a, b)}
        solutions = set()
        for values in product(range(3), repeat=3):
            assignment = dict(zip(inst.variables, values))
            if inst.is_solution(assignment):
                solutions.add(tuple(sorted(assignment.items())))
        assert homs == solutions
        assert len(homs) == 6  # 3! proper 3-colorings of a triangle


class TestHomomorphismToCsp:
    def test_breaking_up(self):
        a = Structure({"E": 2}, [0, 1, 2], {"E": [(0, 1), (1, 2)]})
        b = Structure({"E": 2}, ["u", "v"], {"E": [("u", "v")]})
        inst = homomorphism_to_csp(a, b)
        assert len(inst.constraints) == 2
        assert all(c.relation == frozenset({("u", "v")}) for c in inst.constraints)

    def test_solutions_match_homomorphisms(self):
        a = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        b = Structure({"E": 2}, ["u", "v"], {"E": [("u", "v"), ("v", "u")]})
        inst = homomorphism_to_csp(a, b)
        for image in product(["u", "v"], repeat=2):
            mapping = dict(zip([0, 1], image))
            assert inst.is_solution(mapping) == is_homomorphism(mapping, a, b)


edge_lists = st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=6)


@settings(max_examples=60, deadline=None)
@given(edge_lists, edge_lists)
def test_round_trip_preserves_homomorphisms(a_edges, b_edges):
    """hom → CSP → hom: the mappings that solve are identical."""
    a = Structure({"E": 2}, range(3), {"E": a_edges})
    b = Structure({"E": 2}, range(3), {"E": b_edges})
    inst = homomorphism_to_csp(a, b)
    a2, b2 = csp_to_homomorphism(inst)
    for image in product(range(3), repeat=3):
        mapping = dict(zip(sorted(a.domain, key=repr), image))
        direct = is_homomorphism(mapping, a, b)
        through_csp = inst.is_solution(mapping)
        round_trip = is_homomorphism(mapping, a2, b2)
        assert direct == through_csp
        if a_edges:  # with no constraints the round-trip structure is empty-vocabulary
            assert through_csp == round_trip


@st.composite
def small_instances(draw):
    n = draw(st.integers(1, 3))
    variables = [f"v{i}" for i in range(n)]
    constraints = []
    for _ in range(draw(st.integers(1, 3))):
        arity = draw(st.integers(1, 2))
        scope = tuple(
            draw(st.sampled_from(variables)) for _ in range(arity)
        )
        rows = draw(st.lists(st.tuples(*[st.integers(0, 1)] * arity), max_size=4))
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, [0, 1], constraints)


@settings(max_examples=60, deadline=None)
@given(small_instances())
def test_instance_solutions_equal_converted_homomorphisms(instance):
    a, b = csp_to_homomorphism(instance)
    norm = instance.normalize()
    for values in product([0, 1], repeat=len(instance.variables)):
        mapping = dict(zip(instance.variables, values))
        assert norm.is_solution(mapping) == is_homomorphism(mapping, a, b)
