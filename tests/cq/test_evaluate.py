"""Conjunctive-query evaluation Q(D)."""

import pytest

from repro.cq.evaluate import atom_relation, evaluate, evaluate_boolean, satisfying_assignments
from repro.cq.parser import parse_atom, parse_query
from repro.cq.query import Var
from repro.errors import VocabularyError
from repro.relational.structure import Structure


def db(edges, nodes=None):
    nodes = nodes if nodes is not None else sorted({v for e in edges for v in e})
    return Structure({"E": 2}, nodes, {"E": edges})


PATH = db([(1, 2), (2, 3), (3, 4)])


class TestAtomRelation:
    def test_plain_atom(self):
        rel = atom_relation(parse_atom("E(X, Y)"), PATH)
        assert rel.attributes == ("X", "Y")
        assert len(rel) == 3

    def test_constant_selection(self):
        rel = atom_relation(parse_atom("E(X, 2)"), PATH)
        assert rel.tuples == frozenset({(1,)})

    def test_repeated_variable_selects_diagonal(self):
        loop_db = db([(1, 1), (1, 2)])
        rel = atom_relation(parse_atom("E(X, X)"), loop_db)
        assert rel.tuples == frozenset({(1,)})

    def test_unknown_predicate_raises(self):
        with pytest.raises(VocabularyError):
            atom_relation(parse_atom("F(X)"), PATH)

    def test_all_constants(self):
        rel = atom_relation(parse_atom("E(1, 2)"), PATH)
        assert rel.attributes == ()
        assert len(rel) == 1  # satisfied: nullary relation containing ()


class TestEvaluate:
    def test_two_hop(self):
        q = parse_query("Q(X, Y) :- E(X, Z), E(Z, Y).")
        answers = evaluate(q, PATH)
        assert answers.tuples == frozenset({(1, 3), (2, 4)})

    def test_projection_collapses(self):
        q = parse_query("Q(X) :- E(X, Z), E(Z, Y).")
        answers = evaluate(q, PATH)
        assert answers.tuples == frozenset({(1,), (2,)})

    def test_boolean_query(self):
        q = parse_query("Q() :- E(X, Y), E(Y, X).")
        assert not evaluate_boolean(q, PATH)
        assert evaluate_boolean(q, db([(1, 2), (2, 1)]))

    def test_cyclic_pattern(self):
        q = parse_query("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).")
        triangle = db([(1, 2), (2, 3), (3, 1)])
        assert evaluate(q, triangle).tuples == frozenset({(1,), (2,), (3,)})
        assert not evaluate(q, PATH)

    def test_constants_in_query(self):
        q = parse_query("Q(X) :- E(1, X).")
        assert evaluate(q, PATH).tuples == frozenset({(2,)})

    def test_satisfying_assignments(self):
        q = parse_query("Q(X) :- E(X, Y).")
        assignments = list(satisfying_assignments(q, PATH))
        assert {(a[Var("X")], a[Var("Y")]) for a in assignments} == {
            (1, 2),
            (2, 3),
            (3, 4),
        }

    def test_self_join(self):
        q = parse_query("Q(X) :- E(X, Y), E(X, Z).")
        fan = db([(1, 2), (1, 3)])
        assert evaluate(q, fan).tuples == frozenset({(1,)})

    def test_empty_database(self):
        q = parse_query("Q(X) :- E(X, Y).")
        assert not evaluate(q, db([], nodes=[1]))
