"""Bounded-variable formulas: Proposition 6.1 and the Theorem 6.2 pipeline."""

import pytest

from repro.cq.bounded import (
    AndFormula,
    AtomFormula,
    ExistsFormula,
    count_variables,
    evaluate_formula,
    formula_for_structure,
    formula_from_tree_decomposition,
    free_variables,
)
from repro.errors import DecompositionError
from repro.generators.graphs import (
    cycle_graph,
    graph_as_digraph_structure,
    grid_graph,
    path_graph,
    random_digraph,
)
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure
from repro.width.gaifman import gaifman_graph
from repro.width.treedecomp import heuristic_decomposition


def path_structure(n):
    return Structure({"E": 2}, range(n), {"E": [(i, i + 1) for i in range(n - 1)]})


class TestFormulaBasics:
    def test_free_variables(self):
        f = ExistsFormula(("x",), AtomFormula("E", ("x", "y")))
        assert free_variables(f) == frozenset({"y"})

    def test_count_variables_counts_names(self):
        f = ExistsFormula(
            ("x",),
            AndFormula(
                (
                    AtomFormula("E", ("x", "y")),
                    ExistsFormula(("x",), AtomFormula("E", ("y", "x"))),
                )
            ),
        )
        assert count_variables(f) == 2  # names x and y, reused

    def test_empty_conjunction_is_true(self):
        db = Structure({"E": 2}, [0], {})
        assert evaluate_formula(AndFormula(()), db)

    def test_unassigned_free_variable_raises(self):
        db = Structure({"E": 2}, [0], {})
        with pytest.raises(DecompositionError):
            evaluate_formula(AtomFormula("E", ("x", "y")), db)

    def test_atom_with_assignment(self):
        db = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        assert evaluate_formula(AtomFormula("E", ("x", "y")), db, {"x": 0, "y": 1})
        assert not evaluate_formula(AtomFormula("E", ("x", "y")), db, {"x": 1, "y": 0})

    def test_exists_semantics(self):
        db = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        f = ExistsFormula(("x", "y"), AtomFormula("E", ("x", "y")))
        assert evaluate_formula(f, db)
        empty = Structure({"E": 2}, [0], {})
        assert not evaluate_formula(f, empty)


class TestConstruction:
    def test_path_uses_two_variables(self):
        a = path_structure(6)
        f = formula_for_structure(a)
        assert count_variables(f) <= 2  # paths have treewidth 1

    def test_cycle_uses_three_variables(self):
        a = graph_as_digraph_structure(cycle_graph(5))
        f = formula_for_structure(a)
        assert count_variables(f) <= 3  # cycles have treewidth 2

    def test_grid_width_bound(self):
        a = graph_as_digraph_structure(grid_graph(2, 4))
        f = formula_for_structure(a)
        assert count_variables(f) <= 3  # 2×n grids have treewidth 2

    def test_invalid_decomposition_missing_fact(self):
        from repro.width.treedecomp import TreeDecomposition

        a = path_structure(3)
        bad = TreeDecomposition({0: {0, 1}, 1: {2}}, [(0, 1)])
        with pytest.raises(DecompositionError):
            formula_from_tree_decomposition(a, bad)


class TestTheorem62Equivalence:
    """evaluate(φ-from-decomposition, B) == ∃hom(A → B)."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_paths_against_targets(self, n):
        a = path_structure(n)
        f = formula_for_structure(a)
        targets = [
            Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]}),
            Structure({"E": 2}, [0], {"E": [(0, 0)]}),
            Structure({"E": 2}, [0, 1], {"E": [(0, 1)]}),
            Structure({"E": 2}, [0], {"E": []}),
        ]
        for b in targets:
            assert evaluate_formula(f, b) == homomorphism_exists(a, b)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_structures_vs_random_targets(self, seed):
        a = random_digraph(4, 0.4, seed=seed)
        if not a.relation("E"):
            return
        b = random_digraph(3, 0.5, seed=seed + 99)
        graph = gaifman_graph(a)
        decomposition = heuristic_decomposition(graph)
        f = formula_from_tree_decomposition(a, decomposition)
        assert count_variables(f) <= decomposition.width + 1
        assert evaluate_formula(f, b) == homomorphism_exists(a, b)

    def test_odd_cycle_vs_k2(self):
        a = graph_as_digraph_structure(cycle_graph(5))
        k2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
        f = formula_for_structure(a)
        assert not evaluate_formula(f, k2)

    def test_even_cycle_vs_k2(self):
        a = graph_as_digraph_structure(cycle_graph(6))
        k2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
        f = formula_for_structure(a)
        assert evaluate_formula(f, k2)


class TestFormulaToQuery:
    """The converse of Proposition 6.1: formula → query → structure stays
    bounded-treewidth and homomorphically faithful."""

    def test_round_trip_preserves_semantics(self):
        from repro.cq.bounded import formula_to_query
        from repro.cq.evaluate import evaluate_boolean

        a = path_structure(5)
        f = formula_for_structure(a)
        q = formula_to_query(f)
        for seed in range(5):
            b = random_digraph(3, 0.5, seed=seed + 200)
            assert evaluate_boolean(q, b) == homomorphism_exists(a, b)

    def test_round_trip_treewidth_bound(self):
        from repro.cq.bounded import formula_to_query
        from repro.cq.canonical import structure_from_query_body
        from repro.width.treedecomp import treewidth_of_structure

        a = graph_as_digraph_structure(cycle_graph(6))  # treewidth 2
        f = formula_for_structure(a)
        q = formula_to_query(f)
        round_tripped = structure_from_query_body(q)
        assert treewidth_of_structure(round_tripped) <= count_variables(f) - 1

    def test_round_trip_hom_equivalent(self):
        from repro.cq.bounded import formula_to_query
        from repro.cq.canonical import structure_from_query_body
        from repro.relational.core import homomorphically_equivalent

        a = graph_as_digraph_structure(cycle_graph(4))
        f = formula_for_structure(a)
        q = formula_to_query(f)
        # Var domain elements vs original elements: compare behavior, which
        # is what hom-equivalence captures.
        round_tripped = structure_from_query_body(q)
        assert homomorphically_equivalent(a, round_tripped)

    def test_atom_free_sentence_rejected(self):
        from repro.cq.bounded import formula_to_query

        with pytest.raises(DecompositionError):
            formula_to_query(AndFormula(()))

    def test_free_variable_rejected(self):
        from repro.cq.bounded import formula_to_query

        with pytest.raises(DecompositionError):
            formula_to_query(AtomFormula("E", ("x", "y")))
