"""Conjunctive query AST and parser."""

import pytest

from repro.cq.parser import parse_atom, parse_query
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.errors import ParseError


class TestVarAtom:
    def test_var_identity(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_atom_variables_in_order(self):
        a = Atom("R", (Var("Y"), 3, Var("X"), Var("Y")))
        assert a.variables() == (Var("Y"), Var("X"))
        assert a.constants() == (3,)
        assert a.arity == 4


class TestConjunctiveQuery:
    def test_paper_example(self):
        q = parse_query("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).")
        assert q.head_name == "Q"
        assert q.distinguished == (Var("X1"), Var("X2"))
        assert len(q.body) == 3
        assert q.predicates() == {"P": 3, "R": 2}

    def test_boolean_query(self):
        q = ConjunctiveQuery("Q", (), [Atom("E", (Var("X"), Var("Y")))])
        assert q.is_boolean

    def test_unsafe_head_rejected(self):
        with pytest.raises(ParseError):
            ConjunctiveQuery("Q", (Var("X"),), [Atom("E", (Var("Y"), Var("Z")))])

    def test_non_variable_head_rejected(self):
        with pytest.raises(ParseError):
            ConjunctiveQuery("Q", (3,), [Atom("E", (3, Var("X")))])

    def test_variables_distinguished_first(self):
        q = parse_query("Q(Y) :- E(X, Y), E(Y, Z).")
        assert q.variables()[0] == Var("Y")
        assert set(q.existential_variables()) == {Var("X"), Var("Z")}

    def test_arity_clash_detected(self):
        q = ConjunctiveQuery(
            "Q", (), [Atom("E", (Var("X"),)), Atom("E", (Var("X"), Var("Y")))]
        )
        with pytest.raises(ParseError):
            q.predicates()

    def test_rename_apart(self):
        q = parse_query("Q(X) :- E(X, Y).")
        r = q.rename_apart("_1")
        assert r.distinguished == (Var("X_1"),)
        assert not set(v.name for v in q.variables()) & set(
            v.name for v in r.variables()
        )

    def test_equality_ignores_body_order(self):
        q1 = parse_query("Q(X) :- E(X, Y), F(Y).")
        q2 = parse_query("Q(X) :- F(Y), E(X, Y).")
        assert q1 == q2


class TestParser:
    def test_constants(self):
        a = parse_atom("R(X, alice, 42, 'bob cat')")
        assert a.terms == (Var("X"), "alice", 42, "bob cat")

    def test_underscore_is_variable(self):
        a = parse_atom("R(_x)")
        assert a.terms == (Var("_x"),)

    def test_nullary_atom(self):
        assert parse_atom("Q()").arity == 0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(X) junk")

    def test_missing_period_ok(self):
        q = parse_query("Q(X) :- E(X, Y)")
        assert len(q.body) == 1

    def test_constant_in_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(a) :- E(a, X).")

    def test_bad_tokens(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- E(X @ Y).")

    def test_negative_integer_constant(self):
        a = parse_atom("R(-5)")
        assert a.terms == (-5,)
