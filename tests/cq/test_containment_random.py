"""Randomized containment properties over generated query families."""

import pytest

from repro.cq.canonical import structure_from_query_body
from repro.cq.containment import (
    are_equivalent,
    is_contained_in,
    is_contained_in_via_homomorphism,
    minimize,
)
from repro.generators.queries import (
    chain_query,
    random_query,
    random_tree_query,
    star_query,
)
from repro.width.gaifman import structure_hypergraph
from repro.width.acyclic import is_acyclic
from repro.width.treedecomp import treewidth_of_structure


class TestDualDecidersAgree:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_boolean_queries(self, seed):
        q1 = random_query(3, 3, seed=seed)
        q2 = random_query(3, 3, seed=seed + 400)
        assert is_contained_in(q1, q2) == is_contained_in_via_homomorphism(q1, q2)

    @pytest.mark.parametrize("seed", range(15))
    def test_tree_queries(self, seed):
        q1 = random_tree_query(4, seed=seed)
        q2 = random_tree_query(3, seed=seed + 99)
        assert is_contained_in(q1, q2) == is_contained_in_via_homomorphism(q1, q2)


class TestKnownGroundTruth:
    @pytest.mark.parametrize("a,b", [(2, 4), (3, 3), (5, 2)])
    def test_star_containment_by_ray_count(self, a, b):
        # More rays ⊆ fewer rays: a center with n out-edges has m ≤ n too —
        # but rays can collapse onto one another, so actually ANY star with
        # ≥1 ray is contained in every other: all rays map to one witness.
        assert is_contained_in(star_query(a), star_query(b))

    @pytest.mark.parametrize("seed", range(10))
    def test_tree_queries_contained_in_single_edge(self, seed):
        """Every tree query with an atom maps onto a single edge pattern?
        No — direction matters; instead: every tree query *contains* the
        pattern consisting of its own body (reflexivity), and minimization
        keeps equivalence."""
        q = random_tree_query(4, seed=seed)
        assert is_contained_in(q, q)
        core = minimize(q)
        assert are_equivalent(q, core)
        assert len(core.body) <= len(q.body)

    @pytest.mark.parametrize("seed", range(10))
    def test_tree_query_structures_are_acyclic_width_one(self, seed):
        q = random_tree_query(5, seed=seed)
        s = structure_from_query_body(q)
        assert is_acyclic([e for e in structure_hypergraph(s) if e])
        assert treewidth_of_structure(s) <= 1

    def test_chain_vs_tree(self):
        # A chain is a tree query; chains of length n are contained in
        # chains of length m ≤ n.
        assert is_contained_in(chain_query(5), chain_query(3))
        assert not is_contained_in(chain_query(3), chain_query(5))


class TestMinimizationProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_minimize_preserves_equivalence_and_shrinks(self, seed):
        q = random_query(4, 3, seed=seed + 800)
        core = minimize(q)
        assert are_equivalent(q, core)
        assert len(core.body) <= len(q.body)

    @pytest.mark.parametrize("seed", range(8))
    def test_minimize_is_idempotent(self, seed):
        q = random_query(4, 3, seed=seed + 900)
        once = minimize(q)
        twice = minimize(once)
        assert len(once.body) == len(twice.body)
