"""``canonical_key``: equal keys iff isomorphic queries; on minimized
queries a sound-and-complete equality key for CQ equivalence."""

import random

import pytest

from repro.cq.canonical import CANONICAL_KEY_PERMUTATION_CAP, canonical_key
from repro.cq.containment import are_equivalent, minimize
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.generators.queries import random_query


def scramble(query, rng):
    """Rename all variables freshly and shuffle the body (an isomorphic
    rewrite by construction)."""
    rename = {v: Var(f"s{i}_{rng.randrange(10**6)}") for i, v in enumerate(query.variables())}
    body = [
        Atom(a.predicate, tuple(rename.get(t, t) for t in a.terms))
        for a in query.body
    ]
    rng.shuffle(body)
    return ConjunctiveQuery(
        query.head_name,
        tuple(rename.get(v, v) for v in query.distinguished),
        body,
    )


def test_isomorphic_rewrites_share_the_key():
    rng = random.Random(0)
    q = parse_query("Q(X, Z) :- E(X, Y), E(Y, Z), F(Z, X).")
    key = canonical_key(q)
    assert key is not None
    for _ in range(20):
        assert canonical_key(scramble(q, rng)) == key


def test_head_name_does_not_affect_the_key():
    a = parse_query("Q(X) :- E(X, Y).")
    b = parse_query("Other(X) :- E(X, Y).")
    assert canonical_key(a) == canonical_key(b)


def test_different_queries_get_different_keys():
    pairs = [
        ("Q(X) :- E(X, Y).", "Q(X) :- E(Y, X)."),
        ("Q(X, Y) :- E(X, Y).", "Q(X, Y) :- E(Y, X)."),
        ("Q(X) :- E(X, X).", "Q(X) :- E(X, Y)."),
        ("Q(X) :- E(X, Y), E(Y, X).", "Q(X) :- E(X, Y), E(Y, Z)."),
    ]
    for left, right in pairs:
        kl = canonical_key(parse_query(left))
        kr = canonical_key(parse_query(right))
        assert kl is not None and kr is not None
        assert kl != kr, (left, right)


def test_constants_are_pinned_by_repr():
    a = parse_query("Q(X) :- E(X, 1).")
    b = parse_query("Q(X) :- E(X, 2).")
    assert canonical_key(a) != canonical_key(b)
    assert canonical_key(a) == canonical_key(parse_query("Q(Z) :- E(Z, 1)."))


def test_repeated_head_variables_distinguished_from_distinct_ones():
    twice = parse_query("Q(X, X) :- E(X, Y).")
    distinct = parse_query("Q(X, Y) :- E(X, Z), E(Y, W).")
    assert canonical_key(twice) != canonical_key(distinct)


@pytest.mark.parametrize("seed", range(60))
def test_key_equality_iff_equivalence_on_minimized_queries(seed):
    """The containment-cache contract, randomized: for minimized queries,
    equal canonical keys ⟺ Chandra–Merlin equivalence."""
    rng = random.Random(seed)
    q1 = minimize(random_query(4, 3, seed=seed))
    q2 = minimize(random_query(4, 3, seed=seed + 1000))
    k1, k2 = canonical_key(q1), canonical_key(q2)
    if k1 is None or k2 is None:
        pytest.skip("orbit explosion (cap) — no key to compare")
    assert (k1 == k2) == are_equivalent(q1, q2)
    # And a scrambled copy of q1 always agrees with q1.
    assert canonical_key(minimize(scramble(q1, rng))) == k1


def test_orbit_explosion_returns_none_not_a_wrong_key():
    """A query with many interchangeable existential variables exceeds the
    permutation cap and must yield None (fall back to containment)."""
    n = 10  # 10! orderings in one color class > the cap
    body = [Atom("R", (Var("X"), Var(f"Y{i}"))) for i in range(n)]
    q = ConjunctiveQuery("Q", (Var("X"),), body)
    assert canonical_key(q) is None
    assert CANONICAL_KEY_PERMUTATION_CAP < 10**7  # cap stays bounded


def test_boolean_queries_have_keys_too():
    a = parse_query("Q() :- E(X, Y), E(Y, Z).")
    b = parse_query("Q() :- E(A, B), E(B, C).")
    assert canonical_key(a) == canonical_key(b) is not None
