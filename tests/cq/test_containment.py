"""Chandra–Merlin containment (Prop 2.2), canonical structures (Prop 2.3),
and query minimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.canonical import canonical_database, canonical_query
from repro.cq.containment import (
    are_equivalent,
    containment_homomorphism,
    is_contained_in,
    is_contained_in_via_homomorphism,
    minimize,
)
from repro.cq.evaluate import evaluate_boolean
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.errors import DomainError
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure


class TestCanonicalDatabase:
    def test_paper_example_facts(self):
        q = parse_query("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).")
        db = canonical_database(q)
        assert (Var("X1"), Var("Z1"), Var("Z2")) in db.relation("P")
        assert (Var("Z2"), Var("Z3")) in db.relation("R")
        assert (Var("X1"),) in db.relation("P1")
        assert (Var("X2"),) in db.relation("P2")

    def test_constants_become_domain_elements_with_markers(self):
        q = parse_query("Q(X) :- E(X, alice).")
        db = canonical_database(q)
        assert "alice" in db.domain
        assert ("alice",) in db.relation("Const_'alice'")


class TestContainment:
    def test_more_atoms_contained_in_fewer(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        assert is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_both_methods_agree_on_classics(self):
        cases = [
            ("Q(X) :- E(X, Y), E(Y, Z).", "Q(X) :- E(X, Y)."),
            ("Q(X, Y) :- E(X, Y).", "Q(X, Y) :- E(X, Z), E(Z, Y)."),
            ("Q() :- E(X, X).", "Q() :- E(X, Y)."),
            ("Q() :- E(X, Y), E(Y, X).", "Q() :- E(X, Y)."),
        ]
        for s1, s2 in cases:
            q1, q2 = parse_query(s1), parse_query(s2)
            assert is_contained_in(q1, q2) == is_contained_in_via_homomorphism(q1, q2)
            assert is_contained_in(q2, q1) == is_contained_in_via_homomorphism(q2, q1)

    def test_homomorphism_witness_is_returned(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        h = containment_homomorphism(q1, q2)
        assert h is not None
        assert h[Var("X")] == Var("X")

    def test_distinguished_arity_mismatch_raises(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X, Y) :- E(X, Y).")
        with pytest.raises(DomainError):
            is_contained_in(q1, q2)

    def test_constants_block_containment(self):
        q1 = parse_query("Q(X) :- E(X, a).")
        q2 = parse_query("Q(X) :- E(X, b).")
        assert not is_contained_in(q1, q2)
        assert is_contained_in(q1, q1)

    def test_constant_vs_variable(self):
        specific = parse_query("Q(X) :- E(X, a).")
        general = parse_query("Q(X) :- E(X, Y).")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_containment_is_reflexive_and_transitive(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z), E(Z, W).")
        q2 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q3 = parse_query("Q(X) :- E(X, Y).")
        assert is_contained_in(q1, q1)
        assert is_contained_in(q1, q2) and is_contained_in(q2, q3)
        assert is_contained_in(q1, q3)

    def test_cycle_queries(self):
        # Having an odd cycle of length 3 implies having a closed walk of
        # length 9 but not vice versa... both directions checked vs brute.
        c3 = parse_query("Q() :- E(X, Y), E(Y, Z), E(Z, X).")
        c6 = parse_query(
            "Q() :- E(A, B), E(B, C), E(C, D), E(D, F), E(F, G), E(G, A)."
        )
        # C3 pattern maps into C6 pattern? hom D^{C6} -> D^{C3} exists (wrap
        # around), so C3-existence implies C6-existence: C3 ⊆ C6.
        assert is_contained_in(c3, c6)
        assert not is_contained_in(c6, c3)


class TestProposition23:
    """∃hom(A→B) ⟺ B ⊨ φ_A ⟺ φ_B ⊆ φ_A."""

    @pytest.mark.parametrize("seed", range(10))
    def test_three_way_equivalence(self, seed):
        from repro.generators.graphs import random_digraph

        a = random_digraph(3, 0.5, seed=seed)
        b = random_digraph(3, 0.5, seed=seed + 30)
        if not a.relation("E") or not b.relation("E"):
            return
        phi_a = canonical_query(a, "PhiA")
        phi_b = canonical_query(b, "PhiB")
        hom = homomorphism_exists(a, b)
        assert evaluate_boolean(phi_a, b) == hom
        assert is_contained_in(phi_b, phi_a) == hom


class TestMinimize:
    def test_redundant_atom_dropped(self):
        q = parse_query("Q(X, Y) :- E(X, Z), E(Z, Y), E(X, W), E(W, Y).")
        core = minimize(q)
        assert len(core.body) == 2
        assert are_equivalent(q, core)

    def test_already_minimal_unchanged(self):
        q = parse_query("Q(X) :- E(X, Y), E(Y, X).")
        assert len(minimize(q).body) == 2

    def test_directed_four_cycle_is_its_own_core(self):
        # The *directed* 4-cycle admits no retraction onto two vertices
        # (E(B, A) is not an atom), so minimization must keep all 4 atoms.
        q = parse_query("Q() :- E(A, B), E(B, C), E(C, D), E(D, A).")
        core = minimize(q)
        assert len(core.body) == 4
        assert are_equivalent(q, core)

    def test_two_digons_fold_onto_one(self):
        # E(A,B),E(B,A) plus E(B,C),E(C,B): folding C ↦ A maps every atom
        # onto an existing atom, so the core is a single 2-cycle.
        q = parse_query("Q() :- E(A, B), E(B, A), E(B, C), E(C, B).")
        core = minimize(q)
        assert len(core.body) == 2
        assert are_equivalent(q, core)

    def test_minimization_keeps_distinguished_variables(self):
        q = parse_query("Q(X) :- E(X, Y), E(X, Z).")
        core = minimize(q)
        assert Var("X") in {v for a in core.body for v in a.variables()}
        assert len(core.body) == 1


@st.composite
def chain_queries(draw):
    """Chains E(X0,X1),...,E(Xn-1,Xn) with head X0 — containment is decided
    by length, giving a known ground truth."""
    n = draw(st.integers(1, 4))
    atoms = [Atom("E", (Var(f"X{i}"), Var(f"X{i+1}"))) for i in range(n)]
    return ConjunctiveQuery("Q", (Var("X0"),), atoms), n


@settings(max_examples=30, deadline=None)
@given(chain_queries(), chain_queries())
def test_chain_containment_matches_length(chain1, chain2):
    (q1, n1), (q2, n2) = chain1, chain2
    # "X0 starts a path of length n" : longer chains are contained in shorter.
    assert is_contained_in(q1, q2) == (n1 >= n2)
    assert is_contained_in_via_homomorphism(q1, q2) == (n1 >= n2)
