"""Semantic properties of certain answers: monotonicity, assumption
ordering (sound ⊆ exact), and invariance facts."""

import random

import pytest

from repro.views.certain import (
    ViewSetup,
    certain_answer_bruteforce,
    certain_answer_exact_views,
)
from repro.views.template import certain_answer_via_csp

OBJECTS = ["o1", "o2", "o3"]
FINITE_DEFS = ["a", "b", "a b", "a | b", "a a"]
QUERIES = ["a", "a b", "a | b", "a a", "a*"]


def random_setup(rng):
    defs = {f"V{i}": rng.choice(FINITE_DEFS) for i in range(rng.randint(1, 2))}
    exts = {
        name: {(rng.choice(OBJECTS), rng.choice(OBJECTS)) for _ in range(rng.randint(1, 2))}
        for name in defs
    }
    return ViewSetup(defs, exts)


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(15))
    def test_cert_grows_when_extensions_grow(self, seed):
        """More extension pairs ⇒ fewer consistent databases ⇒ larger cert."""
        rng = random.Random(seed)
        views = random_setup(rng)
        q = rng.choice(QUERIES)
        c, d = rng.choice(OBJECTS), rng.choice(OBJECTS)
        before = certain_answer_via_csp(q, views, c, d)

        grown_exts = {k: set(v) for k, v in views.extensions.items()}
        name = rng.choice(sorted(grown_exts))
        grown_exts[name].add((rng.choice(OBJECTS), rng.choice(OBJECTS)))
        grown = views.with_extensions(grown_exts)
        after = certain_answer_via_csp(q, grown, c, d)
        assert not (before and not after), "certain answers must be monotone in ext"

    @pytest.mark.parametrize("seed", range(10))
    def test_cert_antitone_in_query_language(self, seed):
        """L(Q1) ⊆ L(Q2) ⇒ cert(Q1) ⊆ cert(Q2): a certain Q1-path is a
        certain Q2-path."""
        rng = random.Random(seed + 100)
        views = random_setup(rng)
        c, d = rng.choice(OBJECTS), rng.choice(OBJECTS)
        narrow, wide = "a b", "a b | b a"  # L(narrow) ⊆ L(wide)
        if certain_answer_via_csp(narrow, views, c, d):
            assert certain_answer_via_csp(wide, views, c, d)


class TestExactViews:
    @pytest.mark.parametrize("seed", range(15))
    def test_sound_cert_subset_of_exact_cert(self, seed):
        rng = random.Random(seed + 500)
        views = random_setup(rng)
        q = rng.choice(QUERIES)
        c, d = rng.choice(OBJECTS), rng.choice(OBJECTS)
        try:
            sound = certain_answer_bruteforce(q, views, c, d, 3)
            exact = certain_answer_exact_views(q, views, c, d, 3)
        except Exception:
            return
        assert not (sound and not exact), "exactness can only add certain answers"

    def test_exactness_separates(self):
        """def(V) = a | b, ext = {(x, y)} only: under exact views no OTHER
        pair may satisfy the view, but (x, y) still has two colorings, so
        Q = a stays uncertain; with a second view pinning b elsewhere the
        exact semantics forces the choice."""
        views = ViewSetup(
            {"V": "a | b", "W": "b"},
            {"V": {("x", "y")}, "W": set()},
        )
        # Exact: ans(W) must be EMPTY, so the witness for V cannot use b!
        assert not certain_answer_bruteforce("a", views, "x", "y", 3)
        assert certain_answer_exact_views("a", views, "x", "y", 3)

    def test_exact_agrees_when_language_is_rigid(self):
        views = ViewSetup({"V": "a"}, {"V": {("x", "y")}})
        for q, expected in [("a", True), ("b", False)]:
            assert certain_answer_bruteforce(q, views, "x", "y", 2) == expected
            assert certain_answer_exact_views(q, views, "x", "y", 2) == expected
