"""Theorem 7.3: CSP ≤p view-based query answering, round-tripped."""

import pytest

from repro.errors import DomainError
from repro.generators.graphs import directed_cycle_structure, random_digraph
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure
from repro.views.certain import certain_answer_bruteforce, is_consistent, witness_databases
from repro.views.reduction import SINK, SOURCE, csp_to_view_reduction

K2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
LOOP = Structure({"E": 2}, ["l"], {"E": [("l", "l")]})


class TestConstruction:
    def test_query_and_views_depend_only_on_b(self):
        red = csp_to_view_reduction(K2)
        assert set(red.definitions) == {"Vloop", "Vedge", "Vs", "Vt"}
        # Finite languages of short words: exactly the gadget shapes.
        loop_words = set(red.definitions["Vloop"].enumerate_words(2))
        assert all(len(w) == 2 and w[0] == w[1] for w in loop_words)
        edge_words = set(red.definitions["Vedge"].enumerate_words(2))
        assert all(len(w) == 2 for w in edge_words)

    def test_degenerate_templates_rejected(self):
        with pytest.raises(DomainError):
            csp_to_view_reduction(Structure({"E": 2}, [], {}))
        with pytest.raises(DomainError):
            csp_to_view_reduction(Structure({"E": 2}, [0], {}))

    def test_extensions_encode_a(self):
        red = csp_to_view_reduction(K2)
        a = directed_cycle_structure(3)
        views, c, d = red.setup_for(a)
        assert c == SOURCE and d == SINK
        assert views.extensions["Vedge"] == a.relation("E")
        assert len(views.extensions["Vloop"]) == 3


class TestRoundTrip:
    """(c, d) ∉ cert(Q, V) ⟺ CSP(A, B) solvable — via the exact
    brute-force certain checker (all view languages are finite, length 2)."""

    def check(self, a, b):
        red = csp_to_view_reduction(b)
        views, c, d = red.setup_for(a)
        cert = certain_answer_bruteforce(red.query, views, c, d, max_word_length=2)
        assert (not cert) == homomorphism_exists(a, b)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_directed_cycles_vs_k2(self, n):
        # Directed C_n → K2 iff n even.
        self.check(directed_cycle_structure(n), K2)

    def test_loop_template_always_solvable(self):
        self.check(directed_cycle_structure(3), LOOP)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_digraphs_vs_k2(self, seed):
        a = random_digraph(3, 0.5, seed=seed)
        if not a.relation("E"):
            return
        self.check(a, K2)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_digraphs_vs_random_template(self, seed):
        a = random_digraph(3, 0.5, seed=seed)
        b = random_digraph(2, 0.7, seed=seed + 40, loops=True)
        if not a.relation("E") or not b.relation("E"):
            return
        self.check(a, b)


class TestWitnessStructure:
    def test_homomorphism_yields_consistent_counterexample(self):
        """When A → B exists, some witness database avoids the query match —
        exhibited explicitly by coloring along the homomorphism."""
        from repro.views.graphdb import rpq_answers

        red = csp_to_view_reduction(K2)
        a = directed_cycle_structure(4)  # 2-colorable
        views, c, d = red.setup_for(a)
        found_counterexample = False
        for db in witness_databases(views, 2):
            db.add_node(c)
            db.add_node(d)
            assert is_consistent(db, views)
            if (c, d) not in rpq_answers(red.query, db):
                found_counterexample = True
                break
        assert found_counterexample
