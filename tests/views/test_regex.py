"""Regex parsing and Thompson construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.views.regex import (
    ConcatRe,
    EpsilonRe,
    SymbolRe,
    StarRe,
    UnionRe,
    parse_regex,
    regex_to_nfa,
    symbols_of,
)


class TestParser:
    def test_symbol(self):
        assert parse_regex("a") == SymbolRe("a")

    def test_multichar_symbols(self):
        assert parse_regex("edge_1") == SymbolRe("edge_1")

    def test_concat_by_juxtaposition(self):
        r = parse_regex("a b c")
        assert isinstance(r, ConcatRe)
        assert len(r.parts) == 3

    def test_union_precedence(self):
        r = parse_regex("a b | c")
        assert isinstance(r, UnionRe)
        assert isinstance(r.parts[0], ConcatRe)

    def test_star_binds_tightest(self):
        r = parse_regex("a b*")
        assert isinstance(r, ConcatRe)
        assert isinstance(r.parts[1], StarRe)

    def test_plus_and_question_sugar(self):
        plus = parse_regex("a+")
        assert isinstance(plus, ConcatRe)
        opt = parse_regex("a?")
        assert isinstance(opt, UnionRe)
        assert EpsilonRe() in opt.parts

    def test_parentheses(self):
        r = parse_regex("(a | b)*")
        assert isinstance(r, StarRe)

    def test_epsilon_spellings(self):
        assert parse_regex("ε") == EpsilonRe()
        assert parse_regex("eps") == EpsilonRe()

    def test_unbalanced_raises(self):
        with pytest.raises(ParseError):
            parse_regex("(a")
        with pytest.raises(ParseError):
            parse_regex("a)")

    def test_symbols_of(self):
        assert symbols_of(parse_regex("a (b | c)* a")) == frozenset({"a", "b", "c"})


class TestThompson:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("a", [("a",)], [(), ("b",), ("a", "a")]),
            ("a b", [("a", "b")], [("a",), ("b", "a")]),
            ("a | b", [("a",), ("b",)], [(), ("a", "b")]),
            ("a*", [(), ("a",), ("a", "a", "a")], [("b",)]),
            ("a+", [("a",), ("a", "a")], [()]),
            ("a?", [(), ("a",)], [("a", "a")]),
            ("(a b)*", [(), ("a", "b"), ("a", "b", "a", "b")], [("a",), ("b", "a")]),
            ("ε", [()], [("a",)]),
        ],
    )
    def test_language_membership(self, pattern, accepted, rejected):
        nfa = regex_to_nfa(pattern, frozenset({"a", "b"}))
        for w in accepted:
            assert nfa.accepts(w), (pattern, w)
        for w in rejected:
            assert not nfa.accepts(w), (pattern, w)

    def test_empty_language(self):
        nfa = regex_to_nfa("∅")
        assert nfa.is_empty()

    def test_string_shorthand(self):
        assert regex_to_nfa("a b").accepts(("a", "b"))


def reference_match(node, word):
    """Reference regex matcher by brute-force word splitting (exponential,
    for small test words only)."""
    from repro.views.regex import EmptyRe

    if isinstance(node, SymbolRe):
        return word == (node.symbol,)
    if isinstance(node, EpsilonRe):
        return word == ()
    if isinstance(node, EmptyRe):
        return False
    if isinstance(node, UnionRe):
        return any(reference_match(p, word) for p in node.parts)
    if isinstance(node, ConcatRe):
        if not node.parts:
            return word == ()
        head, rest = node.parts[0], ConcatRe(node.parts[1:])
        return any(
            reference_match(head, word[:i]) and reference_match(rest, word[i:])
            for i in range(len(word) + 1)
        )
    if isinstance(node, StarRe):
        if word == ():
            return True
        return any(
            i > 0
            and reference_match(node.inner, word[:i])
            and reference_match(node, word[i:])
            for i in range(1, len(word) + 1)
        )
    raise AssertionError(node)


@st.composite
def regex_ast(draw, depth=3):
    if depth == 0:
        return draw(
            st.sampled_from([SymbolRe("a"), SymbolRe("b"), EpsilonRe()])
        )
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(st.sampled_from([SymbolRe("a"), SymbolRe("b")]))
    if kind == 1:
        return ConcatRe((draw(regex_ast(depth - 1)), draw(regex_ast(depth - 1))))
    if kind == 2:
        return UnionRe((draw(regex_ast(depth - 1)), draw(regex_ast(depth - 1))))
    return StarRe(draw(regex_ast(depth - 1)))


@settings(max_examples=60, deadline=None)
@given(regex_ast(), st.lists(st.sampled_from(["a", "b"]), max_size=4).map(tuple))
def test_thompson_matches_reference_semantics(ast, word):
    nfa = regex_to_nfa(ast, frozenset({"a", "b"}))
    assert nfa.accepts(word) == reference_match(ast, word)
