"""Graph databases and RPQ evaluation."""

import pytest

from repro.errors import DomainError
from repro.views.graphdb import GraphDatabase, rpq_answers, rpq_pairs_from


def chain_db(labels):
    db = GraphDatabase()
    for i, label in enumerate(labels):
        db.add_edge(f"n{i}", label, f"n{i+1}")
    return db


class TestGraphDatabase:
    def test_add_edge_creates_nodes(self):
        db = GraphDatabase()
        db.add_edge("x", "a", "y")
        assert db.nodes == frozenset({"x", "y"})
        assert db.alphabet == frozenset({"a"})

    def test_bad_label_rejected(self):
        with pytest.raises(DomainError):
            GraphDatabase().add_edge("x", "", "y")

    def test_edges_iteration(self):
        db = chain_db(["a", "b"])
        assert list(db.edges("a")) == [("n0", "a", "n1")]
        assert db.num_edges() == 2

    def test_copy_independent(self):
        db = chain_db(["a"])
        other = db.copy()
        other.add_edge("x", "z", "y")
        assert db.num_edges() == 1


class TestRPQ:
    def test_single_label(self):
        db = chain_db(["a", "b"])
        assert rpq_answers("a", db) == frozenset({("n0", "n1")})

    def test_concatenation(self):
        db = chain_db(["a", "b"])
        assert rpq_answers("a b", db) == frozenset({("n0", "n2")})

    def test_star_includes_self_pairs(self):
        db = chain_db(["a", "a"])
        answers = rpq_answers("a*", db)
        assert ("n0", "n0") in answers  # ε-path
        assert ("n0", "n2") in answers

    def test_union(self):
        db = GraphDatabase(edges=[("x", "a", "y"), ("x", "b", "z")])
        assert rpq_answers("a | b", db) == frozenset({("x", "y"), ("x", "z")})

    def test_cycle_pumping(self):
        db = GraphDatabase(edges=[("x", "a", "y"), ("y", "a", "x")])
        answers = rpq_answers("a a", db)
        assert ("x", "x") in answers and ("y", "y") in answers

    def test_pairs_from_single_source(self):
        db = chain_db(["a", "a", "a"])
        assert rpq_pairs_from("a a*", db, "n0") == frozenset({"n1", "n2", "n3"})

    def test_no_match(self):
        db = chain_db(["a"])
        assert not rpq_answers("b", db)

    def test_branching(self):
        db = GraphDatabase(
            edges=[("r", "a", "l"), ("r", "a", "m"), ("l", "b", "t"), ("m", "c", "t")]
        )
        assert rpq_answers("a b", db) == frozenset({("r", "t")})
        assert rpq_answers("a (b | c)", db) == frozenset({("r", "t")})

    def test_answers_monotone_under_edge_addition(self):
        db = chain_db(["a", "b"])
        before = rpq_answers("a b | b", db)
        bigger = db.copy()
        bigger.add_edge("n2", "b", "n0")
        after = rpq_answers("a b | b", bigger)
        assert before <= after


class TestWitnessPaths:
    def test_witness_path_spells_accepted_word(self):
        from repro.views.graphdb import rpq_witness_path
        from repro.views.regex import regex_to_nfa

        db = chain_db(["a", "b", "a"])
        path = rpq_witness_path("a b a", db, "n0", "n3")
        assert path is not None
        word = tuple(label for _u, label, _v in path)
        assert regex_to_nfa("a b a").accepts(word)
        assert path[0][0] == "n0" and path[-1][2] == "n3"

    def test_edges_exist_in_database(self):
        from repro.views.graphdb import rpq_witness_path

        db = GraphDatabase(
            edges=[("x", "a", "y"), ("y", "a", "x"), ("y", "b", "z")]
        )
        path = rpq_witness_path("a* b", db, "x", "z")
        assert path is not None
        edge_set = set(db.edges())
        for edge in path:
            assert edge in edge_set

    def test_shortest_witness(self):
        from repro.views.graphdb import rpq_witness_path

        db = chain_db(["a", "a", "a", "a"])
        db.add_edge("n0", "a", "n4")  # shortcut
        path = rpq_witness_path("a+", db, "n0", "n4")
        assert path == [("n0", "a", "n4")]

    def test_epsilon_witness_is_empty_path(self):
        from repro.views.graphdb import rpq_witness_path

        db = chain_db(["a"])
        assert rpq_witness_path("a*", db, "n0", "n0") == []

    def test_no_witness(self):
        from repro.views.graphdb import rpq_witness_path

        db = chain_db(["a"])
        assert rpq_witness_path("b", db, "n0", "n1") is None

    def test_agrees_with_answers(self):
        from repro.views.graphdb import rpq_answers, rpq_witness_path

        db = GraphDatabase(
            edges=[("x", "a", "y"), ("y", "b", "z"), ("z", "a", "x"), ("x", "b", "x")]
        )
        query = "(a | b) (a | b)"
        answers = rpq_answers(query, db)
        for u in db.nodes:
            for v in db.nodes:
                witness = rpq_witness_path(query, db, u, v)
                assert (witness is not None) == ((u, v) in answers)
