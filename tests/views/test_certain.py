"""Certain answers: the template reduction (Thm 7.5) against brute force."""

import random

import pytest

from repro.errors import DomainError, SolverError
from repro.views.certain import (
    ViewSetup,
    certain_answer,
    certain_answer_bruteforce,
    is_consistent,
    witness_databases,
)
from repro.views.graphdb import GraphDatabase
from repro.views.template import (
    certain_answer_via_csp,
    constraint_template,
    extension_structure,
    remove_epsilons,
)
from repro.views.regex import regex_to_nfa


class TestViewSetup:
    def test_normalizes_definitions(self):
        vs = ViewSetup({"V": "a b"}, {"V": {("x", "y")}})
        assert vs.definitions["V"].accepts(("a", "b"))
        assert vs.objects() == frozenset({"x", "y"})

    def test_extension_for_unknown_view_rejected(self):
        with pytest.raises(DomainError):
            ViewSetup({"V": "a"}, {"W": set()})

    def test_missing_extensions_default_empty(self):
        vs = ViewSetup({"V": "a"})
        assert vs.extensions["V"] == frozenset()


class TestConsistency:
    def test_consistent_database(self):
        vs = ViewSetup({"V": "a"}, {"V": {("x", "y")}})
        db = GraphDatabase(edges=[("x", "a", "y")])
        assert is_consistent(db, vs)

    def test_inconsistent_database(self):
        vs = ViewSetup({"V": "a"}, {"V": {("x", "y")}})
        db = GraphDatabase(edges=[("y", "a", "x")])
        assert not is_consistent(db, vs)

    def test_sound_views_allow_extra_facts(self):
        vs = ViewSetup({"V": "a"}, {"V": {("x", "y")}})
        db = GraphDatabase(edges=[("x", "a", "y"), ("q", "a", "r"), ("x", "b", "q")])
        assert is_consistent(db, vs)


class TestWitnessDatabases:
    def test_all_witnesses_are_consistent(self):
        vs = ViewSetup({"V": "a | (a a)"}, {"V": {("x", "y")}})
        dbs = list(witness_databases(vs, 2))
        assert len(dbs) == 2
        for db in dbs:
            assert is_consistent(db, vs)

    def test_unwitnessable_raises(self):
        vs = ViewSetup({"V": "a a a"}, {"V": {("x", "y")}})
        with pytest.raises(DomainError):
            list(witness_databases(vs, 2))

    def test_epsilon_only_self_pair(self):
        vs = ViewSetup({"V": "ε"}, {"V": {("x", "x")}})
        dbs = list(witness_databases(vs, 2))
        assert len(dbs) == 1


class TestCertainAnswers:
    def test_forced_composition(self):
        vs = ViewSetup(
            {"V1": "a", "V2": "b"}, {"V1": {("x", "y")}, "V2": {("y", "z")}}
        )
        assert certain_answer("a b", vs, "x", "z")
        assert not certain_answer("a b", vs, "x", "y")
        assert not certain_answer("b a", vs, "x", "z")

    def test_disjunctive_uncertainty(self):
        vs = ViewSetup({"V": "a | b"}, {"V": {("x", "y")}})
        assert not certain_answer("a", vs, "x", "y")
        assert not certain_answer("b", vs, "x", "y")
        assert certain_answer("a | b", vs, "x", "y")

    def test_star_views(self):
        vs = ViewSetup({"V": "a*"}, {"V": {("x", "y")}})
        # x ≠ y: the witness must use at least one 'a'.
        assert certain_answer("a a*", vs, "x", "y")
        assert not certain_answer("a", vs, "x", "y")  # could be 2+ a's

    def test_epsilon_in_query_self_pairs(self):
        vs = ViewSetup({"V": "a"}, {"V": {("x", "y")}})
        assert certain_answer("a*", vs, "x", "x")  # ε ∈ L(Q)
        assert not certain_answer("a a*", vs, "x", "x")

    def test_query_automaton_size_guard(self):
        vs = ViewSetup({"V": "a"}, {"V": set()})
        long_query = " ".join(["a"] * 20)
        with pytest.raises(SolverError):
            constraint_template(long_query, vs)

    @pytest.mark.parametrize("seed", range(30))
    def test_template_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        finite_defs = ["a", "b", "a b", "a | b", "a a", "a?", "b a"]
        queries = ["a", "a b", "a | b", "a a", "a*", "a b*", "(a b)*", "(a|b)(a|b)"]
        objects = ["o1", "o2", "o3"]
        defs = {f"V{i}": rng.choice(finite_defs) for i in range(rng.randint(1, 2))}
        exts = {
            name: {
                (rng.choice(objects), rng.choice(objects))
                for _ in range(rng.randint(1, 2))
            }
            for name in defs
        }
        vs = ViewSetup(defs, exts)
        q = rng.choice(queries)
        c, d = rng.choice(objects), rng.choice(objects)
        bf = certain_answer_bruteforce(q, vs, c, d, max_word_length=3)
        assert certain_answer_via_csp(q, vs, c, d) == bf


class TestTemplateStructure:
    def test_remove_epsilons_language_preserved(self):
        n = regex_to_nfa("(a b)* | a?")
        ef = remove_epsilons(n)
        for w in [(), ("a",), ("a", "b"), ("b",), ("a", "b", "a", "b"), ("a", "a")]:
            assert n.accepts(w) == ef.accepts(w)
        assert all(key[1] is not None for key in ef.transitions)

    def test_template_domain_is_powerset(self):
        vs = ViewSetup({"V": "a"}, {})
        b = constraint_template("a", vs)
        # minimal DFA for "a" over {a} has 3 states (init, accept, dead).
        assert len(b.domain) == 2 ** 3

    def test_extension_structure_markers(self):
        vs = ViewSetup({"V": "a"}, {"V": {("x", "y")}})
        a = extension_structure(vs, "x", "y")
        assert a.relation("U_c") == frozenset({("x",)})
        assert a.relation("U_d") == frozenset({("y",)})
        assert a.relation("V") == frozenset({("x", "y")})

    def test_epsilon_view_self_pairs_dropped(self):
        vs = ViewSetup({"V": "a?"}, {"V": {("x", "x"), ("x", "y")}})
        a = extension_structure(vs, "x", "y")
        assert a.relation("V") == frozenset({("x", "y")})
