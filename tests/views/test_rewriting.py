"""Maximal RPQ rewritings: soundness, maximality, and the gap to perfection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.views.certain import ViewSetup, certain_answer
from repro.views.rewriting import (
    evaluate_rewriting,
    expansion_nfa,
    is_sound_rewriting_word,
    maximal_rewriting,
    view_transition_relation,
)
from repro.views.regex import regex_to_nfa


class TestExpansion:
    def test_expansion_language(self):
        vs = ViewSetup({"V1": "a b", "V2": "c | d"})
        nfa = expansion_nfa(("V1", "V2"), vs)
        assert nfa.accepts(("a", "b", "c"))
        assert nfa.accepts(("a", "b", "d"))
        assert not nfa.accepts(("a", "b"))

    def test_empty_word_expansion(self):
        vs = ViewSetup({"V1": "a"})
        nfa = expansion_nfa((), vs)
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))


class TestSoundWord:
    def test_sound_and_unsound(self):
        vs = ViewSetup({"V1": "a b", "V2": "c", "V3": "a | c"})
        assert is_sound_rewriting_word(("V1", "V2"), "a b c", vs)
        # V3 can expand to 'c': a b c not guaranteed.
        assert not is_sound_rewriting_word(("V1", "V3"), "a b c", vs)


class TestMaximalRewriting:
    def test_star_case(self):
        vs = ViewSetup({"V1": "a b"})
        rw = maximal_rewriting("(a b)*", vs)
        assert rw.accepts(())
        assert rw.accepts(("V1", "V1", "V1"))

    def test_exact_cover(self):
        vs = ViewSetup({"V1": "a b", "V2": "c", "V3": "a"})
        rw = maximal_rewriting("a b c", vs)
        assert rw.accepts(("V1", "V2"))
        assert not rw.accepts(("V3", "V2"))
        assert not rw.accepts(("V1",))

    def test_no_rewriting_when_views_useless(self):
        vs = ViewSetup({"V1": "c"})
        rw = maximal_rewriting("a b", vs)
        assert rw.to_nfa().is_empty()

    def test_rewriting_evaluation_subset_of_certain(self):
        vs = ViewSetup(
            {"V1": "a b", "V2": "c"},
            {"V1": {("x", "y"), ("y", "w")}, "V2": {("y", "z")}},
        )
        rw = maximal_rewriting("a b c", vs)
        answers = evaluate_rewriting(rw, vs)
        assert answers == frozenset({("x", "z")})
        for c, d in answers:
            assert certain_answer("a b c", vs, c, d)

    def test_gap_to_perfect_rewriting(self):
        """Section 7's point: the maximal RPQ rewriting can be strictly
        weaker than the certain answers.  With def(V) = a | b and Q = a | b,
        a single view edge certainly answers Q, and indeed the one-letter
        rewriting word V is sound here — so instead separate via a query the
        view can't compose: Q = a with def(V) = a | b gives an empty
        rewriting although cert is also empty... we exhibit the classic gap:
        two views whose *combination* certainly answers, pairwise not."""
        # def(V1)=a, def(V2)=b; Q = a b | b a.  ext: V1 = {(x,y)}, V2 = {(x,y)}.
        # No view word is sound: V1 V2 expands to "a b" ⊆ Q ✓ — actually
        # sound; check it IS found:
        vs = ViewSetup({"V1": "a", "V2": "b"}, {"V1": {("x", "y")}, "V2": {("y", "z")}})
        rw = maximal_rewriting("a b | b a", vs)
        assert rw.accepts(("V1", "V2"))
        assert rw.accepts(("V2", "V1"))
        assert not rw.accepts(("V1", "V1"))


class TestViewTransitionRelation:
    def test_relation_matches_word_runs(self):
        dfa = regex_to_nfa("a b", frozenset({"a", "b"})).to_dfa().minimized()
        view = regex_to_nfa("a", frozenset({"a", "b"}))
        relation = view_transition_relation(dfa, view)
        for p, q in relation:
            assert dfa.delta[(p, "a")] == q


words = st.lists(st.sampled_from(["V1", "V2"]), max_size=3).map(tuple)


@settings(max_examples=40, deadline=None)
@given(words)
def test_rewriting_membership_iff_sound(word):
    """The defining property: w ∈ maximal rewriting ⟺ every expansion of w
    lies in L(Q)."""
    vs = ViewSetup({"V1": "a b | a", "V2": "b*"})
    query = "a b* | (a b) (a b)*"
    rw = maximal_rewriting(query, vs)
    assert rw.accepts(word) == is_sound_rewriting_word(word, query, vs)


class TestTheorem72Gap:
    """Theorem 7.2's content, demonstrated: the perfect rewriting (= the
    certain-answer function) can answer where the maximal *RPQ* rewriting
    cannot — through the Theorem 7.3 reduction, whose perfect rewriting
    embeds co-NP-complete CSPs and therefore cannot be an RPQ."""

    def test_maximal_rpq_rewriting_strictly_weaker_than_perfect(self):
        from repro.relational.structure import Structure
        from repro.views.certain import certain_answer_bruteforce
        from repro.views.reduction import csp_to_view_reduction

        k2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
        reduction = csp_to_view_reduction(k2)
        # The symmetric triangle is not 2-colorable, so (c, d) is certain.
        triangle = Structure(
            {"E": 2},
            range(3),
            {"E": [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]},
        )
        views, c, d = reduction.setup_for(triangle)
        assert certain_answer_bruteforce(reduction.query, views, c, d, 2)

        # The maximal RPQ rewriting is sound but answers nothing here: every
        # view word admits an innocent expansion outside L(Q), because the
        # expansions of different view edges are chosen independently.
        rewriting = maximal_rewriting(reduction.query, views)
        answers = evaluate_rewriting(rewriting, views)
        assert (c, d) not in answers
        assert answers == frozenset()
