"""Non-perfect Datalog rewritings (the Section 7 closing remark)."""

import random

import pytest

from repro.views.certain import ViewSetup, certain_answer_bruteforce
from repro.views.datalog_rewriting import certain_answer_kconsistency, datalog_rewriting
from repro.views.template import certain_answer_via_csp


class TestKConsistencyEvaluator:
    def test_recovers_forced_composition(self):
        vs = ViewSetup(
            {"V1": "a", "V2": "b"}, {"V1": {("x", "y")}, "V2": {("y", "z")}}
        )
        assert certain_answer_kconsistency("a b", vs, "x", "z", k=2)
        assert not certain_answer_kconsistency("a b", vs, "x", "y", k=2)

    @pytest.mark.parametrize("seed", range(12))
    def test_soundness_on_random_extensions(self, seed):
        """Goal derived ⟹ certainly an answer (never unsound)."""
        rng = random.Random(seed)
        objects = ["o1", "o2", "o3"]
        base = ViewSetup({"V1": "a", "V2": "b"})
        exts = {
            n: {(rng.choice(objects), rng.choice(objects)) for _ in range(2)}
            for n in base.definitions
        }
        views = base.with_extensions(exts)
        c, d = rng.choice(objects), rng.choice(objects)
        q = rng.choice(["a b", "a | b", "a b | b a"])
        if certain_answer_kconsistency(q, views, c, d, k=2):
            assert certain_answer_via_csp(q, views, c, d)

    def test_monotone_in_k(self):
        """Higher k derives at least as much (more pebbles, more power)."""
        vs = ViewSetup(
            {"V1": "a", "V2": "b"}, {"V1": {("x", "y")}, "V2": {("y", "z")}}
        )
        for c, d in [("x", "z"), ("x", "y"), ("y", "z")]:
            k2 = certain_answer_kconsistency("a b", vs, c, d, k=2)
            k3 = certain_answer_kconsistency("a b", vs, c, d, k=3)
            assert not (k2 and not k3)

    def test_non_perfect_in_general(self):
        """The rewriting may miss certain answers at small k — we only
        require soundness, verified against brute force."""
        vs = ViewSetup({"V": "a | b"}, {"V": {("x", "y")}})
        exact = certain_answer_bruteforce("a | b", vs, "x", "y", 2)
        approx = certain_answer_kconsistency("a | b", vs, "x", "y", k=2)
        assert exact  # ground truth: certainly an answer
        assert not approx or exact  # soundness; approx may be False


class TestMaterializedProgram:
    def test_size_guard_raises_on_big_templates(self):
        from repro.errors import SolverError

        vs = ViewSetup({"V1": "a", "V2": "b"})
        with pytest.raises(SolverError):
            datalog_rewriting("a b", vs, k=2, max_sets=50)
