"""NFA/DFA machinery: determinization, complement, minimization, products."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError
from repro.views.automata import DFA, NFA
from repro.views.regex import regex_to_nfa


def simple_nfa():
    """Accepts a+ (one or more a's)."""
    return NFA(
        states={0, 1},
        alphabet={"a"},
        transitions={(0, "a"): {1}, (1, "a"): {1}},
        initial={0},
        accepting={1},
    )


class TestNFA:
    def test_accepts(self):
        n = simple_nfa()
        assert not n.accepts(())
        assert n.accepts(("a",))
        assert n.accepts(("a", "a", "a"))

    def test_epsilon_closure(self):
        n = NFA(
            states={0, 1, 2},
            alphabet={"a"},
            transitions={(0, None): {1}, (1, None): {2}},
            initial={0},
            accepting={2},
        )
        assert n.epsilon_closure({0}) == frozenset({0, 1, 2})
        assert n.accepts(())

    def test_rejects_bad_construction(self):
        with pytest.raises(DomainError):
            NFA({0}, {"a"}, {(0, "b"): {0}}, {0}, {0})
        with pytest.raises(DomainError):
            NFA({0}, {"a"}, {(1, "a"): {0}}, {0}, {0})
        with pytest.raises(DomainError):
            NFA({0}, {None}, {}, {0}, {0})

    def test_trimmed_removes_dead_states(self):
        n = NFA(
            states={0, 1, 2},
            alphabet={"a"},
            transitions={(0, "a"): {1}, (2, "a"): {1}},  # 2 unreachable
            initial={0},
            accepting={1},
        )
        t = n.trimmed()
        assert 2 not in t.states

    def test_is_empty(self):
        empty = NFA({0, 1}, {"a"}, {}, {0}, {1})
        assert empty.is_empty()
        assert not simple_nfa().is_empty()

    def test_enumerate_words(self):
        words = list(simple_nfa().enumerate_words(3))
        assert words == [("a",), ("a", "a"), ("a", "a", "a")]

    def test_shortest_word(self):
        assert simple_nfa().shortest_word() == ("a",)
        assert NFA({0}, {"a"}, {}, {0}, set()).shortest_word() is None

    def test_with_alphabet_preserves_language(self):
        n = simple_nfa().with_alphabet({"b"})
        assert n.accepts(("a",))
        assert not n.accepts(("b",))


class TestDFA:
    def test_subset_construction(self):
        d = simple_nfa().to_dfa()
        assert d.accepts(("a", "a"))
        assert not d.accepts(())

    def test_complement(self):
        d = simple_nfa().to_dfa().complement()
        assert d.accepts(())
        assert not d.accepts(("a",))

    def test_completeness_enforced(self):
        with pytest.raises(DomainError):
            DFA({0}, {"a"}, {}, 0, set())

    def test_product_intersection(self):
        a_star = regex_to_nfa("a*", frozenset({"a", "b"})).to_dfa()
        contains_a = regex_to_nfa("(a|b)* a (a|b)*", frozenset({"a", "b"})).to_dfa()
        both = a_star.product(contains_a)
        assert both.accepts(("a",))
        assert not both.accepts(())
        assert not both.accepts(("b",))

    def test_product_union(self):
        only_a = regex_to_nfa("a", frozenset({"a", "b"})).to_dfa()
        only_b = regex_to_nfa("b", frozenset({"a", "b"})).to_dfa()
        either = only_a.product(only_b, accept_both=False)
        assert either.accepts(("a",)) and either.accepts(("b",))
        assert not either.accepts(("a", "b"))

    def test_minimized_preserves_language(self):
        d = regex_to_nfa("(a|b) (a|b)").to_dfa()
        m = d.minimized()
        assert len(m.states) <= len(d.states)
        for word in [(), ("a",), ("a", "b"), ("b", "b"), ("a", "b", "a")]:
            assert d.accepts(word) == m.accepts(word)

    def test_minimized_canonical_size(self):
        # L = words over {a} of length ≥ 1: minimal DFA has 2 states.
        m = simple_nfa().to_dfa().minimized()
        assert len(m.states) == 2

    def test_equivalent(self):
        d1 = regex_to_nfa("a a*").to_dfa()
        d2 = regex_to_nfa("a* a").to_dfa()
        assert d1.equivalent(d2)
        d3 = regex_to_nfa("a*").to_dfa()
        assert not d1.equivalent(d3)


words = st.lists(st.sampled_from(["a", "b"]), max_size=6).map(tuple)


@settings(max_examples=60, deadline=None)
@given(words)
def test_dfa_agrees_with_nfa(word):
    n = regex_to_nfa("(a b | b)* a?", frozenset({"a", "b"}))
    assert n.accepts(word) == n.to_dfa().accepts(word)


@settings(max_examples=60, deadline=None)
@given(words)
def test_minimization_agrees(word):
    d = regex_to_nfa("(a b | b)* a?", frozenset({"a", "b"})).to_dfa()
    assert d.accepts(word) == d.minimized().accepts(word)


@settings(max_examples=60, deadline=None)
@given(words)
def test_complement_is_involution(word):
    d = regex_to_nfa("a (a|b)*", frozenset({"a", "b"})).to_dfa()
    assert d.accepts(word) != d.complement().accepts(word)
    assert d.accepts(word) == d.complement().complement().accepts(word)
