"""Serialization round trips: fact files, DIMACS, JSON."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.dichotomy.cnf import CNF
from repro.errors import ParseError
from repro.io import (
    cnf_from_dimacs,
    cnf_to_dimacs,
    graph_from_dimacs,
    graph_to_dimacs,
    instance_from_json,
    instance_to_json,
    load_structure,
    save_structure,
    structure_from_facts,
    structure_to_facts,
)
from repro.relational.structure import Structure
from repro.width.graph import Graph


class TestFactFiles:
    def test_round_trip(self):
        s = Structure(
            {"E": 2, "P": 1},
            [1, 2, 3, "iso"],
            {"E": [(1, 2), (2, 3)], "P": [(3,)]},
        )
        assert structure_from_facts(structure_to_facts(s)) == s

    def test_isolated_elements_preserved(self):
        s = Structure({"E": 2}, [1, 2, 99], {"E": [(1, 2)]})
        restored = structure_from_facts(structure_to_facts(s))
        assert 99 in restored.domain

    def test_empty_relations_preserved(self):
        s = Structure({"E": 2, "F": 1}, [1], {"E": [(1, 1)]})
        restored = structure_from_facts(structure_to_facts(s))
        assert restored.relation("F") == frozenset()

    def test_string_constants(self):
        s = Structure({"Likes": 2}, ["ana", "bo"], {"Likes": [("ana", "bo")]})
        assert structure_from_facts(structure_to_facts(s)) == s

    def test_parse_plain_facts_without_headers(self):
        s = structure_from_facts("E(1, 2).\nE(2, 3).\n")
        assert s.relation("E") == frozenset({(1, 2), (2, 3)})

    def test_bad_line_raises(self):
        with pytest.raises(ParseError):
            structure_from_facts("E(1, 2)")  # missing period

    def test_inconsistent_arity_raises(self):
        with pytest.raises(ParseError):
            structure_from_facts("E(1, 2).\nE(1).")

    def test_file_round_trip(self, tmp_path):
        s = Structure({"E": 2}, [0, 1], {"E": [(0, 1)]})
        path = tmp_path / "structure.facts"
        save_structure(s, path)
        assert load_structure(path) == s


class TestDimacsCnf:
    def test_round_trip(self):
        f = CNF([(1, -2), (2, 3, -1), (-3,)])
        restored = cnf_from_dimacs(cnf_to_dimacs(f))
        assert set(restored.clauses) == set(f.clauses)

    def test_parse_reference_format(self):
        text = """c example
p cnf 3 2
1 -2 0
2 3 0
"""
        f = cnf_from_dimacs(text)
        assert f.clauses == ((1, -2), (2, 3))

    def test_clauses_spanning_lines(self):
        f = cnf_from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert f.clauses == ((1, 2, 3),)

    def test_bad_header(self):
        with pytest.raises(ParseError):
            cnf_from_dimacs("p sat 3 1\n1 0")


class TestDimacsGraph:
    def test_round_trip(self):
        g = Graph(vertices=[1, 2, 3, 4], edges=[(1, 2), (2, 3)])
        restored = graph_from_dimacs(graph_to_dimacs(g))
        assert restored.num_vertices() == 4
        assert {frozenset(e) for e in restored.edges()} == {
            frozenset({1, 2}),
            frozenset({2, 3}),
        }

    def test_parse_reference_format(self):
        g = graph_from_dimacs("c demo\np edge 3 2\ne 1 2\ne 2 3\n")
        assert g.num_vertices() == 3 and g.num_edges() == 2

    def test_unknown_line(self):
        with pytest.raises(ParseError):
            graph_from_dimacs("p edge 1 0\nx 1 2")


class TestInstanceJson:
    def test_round_trip(self):
        inst = CSPInstance(
            ["x", "y"],
            [0, 1],
            [Constraint(("x", "y"), {(0, 1), (1, 0)}), Constraint(("x",), {(0,)})],
        )
        restored = instance_from_json(instance_to_json(inst))
        assert restored.variables == inst.variables
        assert restored.domain == inst.domain
        assert {(c.scope, c.relation) for c in restored.constraints} == {
            (c.scope, c.relation) for c in inst.constraints
        }

    def test_solvability_preserved(self):
        from repro.csp.solvers import brute
        from repro.generators.csp_random import random_binary_csp

        for seed in range(5):
            inst = random_binary_csp(4, 2, 4, 0.5, seed=seed)
            restored = instance_from_json(instance_to_json(inst))
            assert brute.is_solvable(restored) == brute.is_solvable(inst)


clause_lists = st.lists(
    st.lists(
        st.integers(1, 4).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=3,
    ).map(tuple),
    max_size=6,
)


@settings(max_examples=50, deadline=None)
@given(clause_lists)
def test_dimacs_cnf_round_trip_property(clauses):
    f = CNF(clauses)
    restored = cnf_from_dimacs(cnf_to_dimacs(f))
    assert list(restored.clauses) == list(f.clauses)


edge_sets = st.sets(
    st.tuples(st.integers(1, 6), st.integers(1, 6)).filter(lambda e: e[0] != e[1]),
    max_size=10,
)


@settings(max_examples=50, deadline=None)
@given(edge_sets)
def test_dimacs_graph_round_trip_property(edges):
    g = Graph(vertices=range(1, 7), edges=edges)
    restored = graph_from_dimacs(graph_to_dimacs(g))
    assert {frozenset(e) for e in restored.edges()} == {frozenset(e) for e in g.edges()}
