"""Run the doctests embedded in module/class docstrings — executable
documentation must stay correct."""

import doctest
import importlib

import pytest

MODULES_WITH_DOCTESTS = [
    "repro.relational.relation",
    "repro.relational.algebra",
    "repro.relational.structure",
    "repro.cq.parser",
    "repro.datalog.parser",
    "repro.telemetry.spans",
    "repro.telemetry.registry",
    "repro.telemetry.profile",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_doctests_actually_exist():
    """Guard against silently testing nothing."""
    total = 0
    for module_name in MODULES_WITH_DOCTESTS:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 5
