"""The whole-library differential matrix: every decider that answers the same
question must agree, across a broad randomized workload sweep.

This is the highest-leverage test in the suite: the paper's content *is* a
web of equivalences, so any divergence between two components is a bug in
at least one of them.
"""

import random
from itertools import product

import pytest

from repro.consistency.arc import ac3, singleton_arc_consistency
from repro.csp.convert import csp_to_homomorphism
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import (
    backjumping,
    backtracking,
    brute,
    consistency,
    decomposition,
    join,
    portfolio,
)
from repro.csp.solvers.backtracking import Inference
from repro.csp.solvers.consistency import Verdict
from repro.games.lfp import duplicator_wins_via_lfp
from repro.games.pebble import duplicator_wins
from repro.relational.homomorphism import homomorphism_exists


def random_instance(seed: int) -> CSPInstance:
    """A broad instance family: varying arity (1–3), domain (2–3), shape."""
    rng = random.Random(seed)
    n = rng.randint(2, 5)
    d = rng.randint(2, 3)
    variables = list(range(n))
    constraints = []
    for _ in range(rng.randint(1, 5)):
        arity = rng.randint(1, min(3, n))
        scope = tuple(rng.sample(variables, arity))
        keep = rng.uniform(0.3, 0.9)
        rows = {
            row for row in product(range(d), repeat=arity) if rng.random() < keep
        }
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, range(d), constraints)


def _forced_parallel(fn):
    """Run ``fn`` with cross-process sharding forced (2 workers, no
    serial-fallback threshold), so the parallel deciders below genuinely
    cross the pool even on these tiny instances."""
    from repro.parallel import parallel_config

    with parallel_config(workers=2, threshold=0):
        return fn()


DECIDERS = [
    ("backtracking-none", lambda i: backtracking.is_solvable(i, Inference.NONE)),
    ("backtracking-fc", lambda i: backtracking.is_solvable(i, Inference.FORWARD_CHECKING)),
    ("backtracking-mac", lambda i: backtracking.is_solvable(i, Inference.MAC)),
    ("backtracking-mac-naive", lambda i: backtracking.is_solvable(
        i, Inference.MAC, strategy="naive")),
    ("backtracking-mac-interned", lambda i: backtracking.is_solvable(
        i, Inference.MAC, strategy="interned")),
    ("backtracking-mac-columnar", lambda i: backtracking.is_solvable(
        i, Inference.MAC, strategy="columnar")),
    ("backjumping", backjumping.is_solvable),
    ("join", join.is_solvable),
    ("join-indexed", lambda i: join.is_solvable(i, strategy="indexed")),
    ("join-scan", lambda i: join.is_solvable(i, strategy="scan")),
    ("join-interned", lambda i: join.is_solvable(i, strategy="interned")),
    ("join-textbook-scan", lambda i: join.is_solvable(i, strategy="textbook+scan")),
    ("join-smallest-interned", lambda i: join.is_solvable(
        i, strategy="smallest+interned")),
    ("join-wcoj", lambda i: join.is_solvable(i, strategy="wcoj")),
    ("join-textbook-wcoj", lambda i: join.is_solvable(
        i, strategy="textbook+wcoj")),
    ("join-columnar", lambda i: join.is_solvable(i, strategy="columnar")),
    ("join-smallest-columnar", lambda i: join.is_solvable(
        i, strategy="smallest+columnar")),
    ("join-parallel", lambda i: _forced_parallel(
        lambda: join.is_solvable(i, strategy="parallel"))),
    ("backtracking-mac-parallel", lambda i: backtracking.is_solvable(
        i, Inference.MAC, workers=2)),
    ("decomposition", decomposition.is_solvable),
    ("consistency-k2", lambda i: consistency.is_solvable(i, 2)),
    ("consistency-k2-naive", lambda i: consistency.is_solvable(i, 2, strategy="naive")),
    ("consistency-k2-interned", lambda i: consistency.is_solvable(
        i, 2, strategy="interned")),
    ("consistency-k2-columnar", lambda i: consistency.is_solvable(
        i, 2, strategy="columnar")),
    ("portfolio", portfolio.is_solvable),
    ("hom-search", lambda i: homomorphism_exists(*csp_to_homomorphism(i))),
]


@pytest.mark.parametrize("seed", range(30))
def test_all_deciders_agree(seed):
    inst = random_instance(seed)
    expected = brute.is_solvable(inst)
    for name, decide in DECIDERS:
        assert decide(inst) == expected, f"{name} disagrees on seed {seed}"


@pytest.mark.parametrize("seed", range(30))
def test_counting_agrees(seed):
    inst = random_instance(seed + 1000)
    assert decomposition.count_solutions(inst) == brute.count_solutions(inst)


@pytest.mark.parametrize("seed", range(20))
def test_refuters_are_sound(seed):
    """Incomplete refutation procedures must never refute a solvable
    instance: AC-3, SAC, k-consistency."""
    inst = random_instance(seed + 2000)
    solvable = brute.is_solvable(inst)
    if not ac3(inst).consistent:
        assert not solvable, "AC-3 refuted a solvable instance"
    if not singleton_arc_consistency(inst).consistent:
        assert not solvable, "SAC refuted a solvable instance"
    for k in (2, 3):
        if consistency.solve_decision(inst, k) is Verdict.UNSATISFIABLE:
            assert not solvable, f"{k}-consistency refuted a solvable instance"


@pytest.mark.parametrize("seed", range(15))
def test_game_engines_agree(seed):
    inst = random_instance(seed + 3000)
    a, b = csp_to_homomorphism(inst)
    if len(a.domain) > 4 or len(b.domain) > 3:
        return  # keep the LFP engine's configuration space small
    for k in (1, 2):
        assert duplicator_wins(a, b, k) == duplicator_wins_via_lfp(a, b, k)


@pytest.mark.parametrize("seed", range(20))
def test_solutions_from_every_solver_are_valid(seed):
    inst = random_instance(seed + 4000)
    norm = inst.normalize()
    for solver in (
        backtracking.solve,
        backjumping.solve,
        join.solve,
        decomposition.solve,
        portfolio.solve,
    ):
        solution = solver(inst)
        if solution is not None:
            assert norm.is_solution(solution)


def _canonical_pc(instance):
    """A strategy-comparable view of a path-consistency output: the map from
    each binary scope (sorted) to its relation, plus unary domains."""
    if instance is None:
        return None
    unary = {}
    pairs = {}
    for c in instance.constraints:
        if c.arity == 1:
            v = c.scope[0]
            rows = {row[0] for row in c.relation}
            unary[v] = unary.get(v, rows) & rows
        elif c.arity == 2:
            x, y = c.scope
            rows = set(c.relation) if x < y else {(b, a) for a, b in c.relation}
            key = (min(x, y), max(x, y))
            pairs[key] = pairs.get(key, rows) & rows
    return unary, pairs


@pytest.mark.parametrize("seed", range(200))
def test_propagation_strategies_identical(seed):
    """The tentpole differential: residual-support and interned (bitset)
    AC/SAC/PC must compute exactly what the naive seed implementations
    compute — same verdicts always (wipeouts included), bit-identical
    fixpoint domains whenever consistent.  (On a wipeout the *partial*
    domains of any AC variant depend on worklist pop order, so only the
    verdict is compared — except residual vs interned, which share the
    worklist discipline and so agree even on partial wipeout domains.)

    The instance family mixes unary through ternary constraints, so the
    sweep covers generalized (non-binary) arc consistency too.
    """
    inst = random_instance(seed + 6000)

    ac_naive = ac3(inst, strategy="naive")
    ac_res = ac3(inst, strategy="residual")
    ac_int = ac3(inst, strategy="interned")
    ac_col = ac3(inst, strategy="columnar")
    assert (
        ac_naive.consistent
        == ac_res.consistent
        == ac_int.consistent
        == ac_col.consistent
    ), f"ac3 verdict, seed {seed}"
    if ac_naive.consistent:
        assert ac_naive.domains == ac_res.domains, f"ac3 domains, seed {seed}"
    assert ac_res.domains == ac_int.domains, f"ac3 interned domains, seed {seed}"
    # The columnar engine inherits the interned worklist discipline, so its
    # domains match even on partial wipeouts.
    assert ac_int.domains == ac_col.domains, f"ac3 columnar domains, seed {seed}"

    sac_naive = singleton_arc_consistency(inst, strategy="naive")
    sac_res = singleton_arc_consistency(inst, strategy="residual")
    sac_int = singleton_arc_consistency(inst, strategy="interned")
    sac_col = singleton_arc_consistency(inst, strategy="columnar")
    assert (
        sac_naive.consistent
        == sac_res.consistent
        == sac_int.consistent
        == sac_col.consistent
    ), f"sac verdict, seed {seed}"
    if sac_naive.consistent:
        assert sac_naive.domains == sac_res.domains, f"sac domains, seed {seed}"
    assert sac_res.domains == sac_int.domains, f"sac interned domains, seed {seed}"
    assert sac_int.domains == sac_col.domains, f"sac columnar domains, seed {seed}"

    from repro.consistency.arc import path_consistency

    pc_naive = path_consistency(inst, strategy="naive")
    pc_res = path_consistency(inst, strategy="residual")
    pc_int = path_consistency(inst, strategy="interned")
    pc_col = path_consistency(inst, strategy="columnar")
    assert (pc_naive is None) == (pc_res is None) == (pc_int is None) == (
        pc_col is None
    ), f"pc verdict, seed {seed}"
    assert _canonical_pc(pc_naive) == _canonical_pc(pc_res), f"pc output, seed {seed}"
    if pc_res is not None:
        # The interned engine decodes back to the *identical* instance, not
        # just a canonically-equal one — and "columnar" (which aliases the
        # code-space PC path) matches it constraint for constraint.
        assert pc_int.variables == pc_res.variables, f"pc vars, seed {seed}"
        assert pc_int.domain == pc_res.domain, f"pc domain, seed {seed}"
        assert set(pc_int.constraints) == set(pc_res.constraints), (
            f"pc constraints, seed {seed}"
        )
        assert set(pc_col.constraints) == set(pc_int.constraints), (
            f"pc columnar constraints, seed {seed}"
        )


@pytest.mark.parametrize("seed", range(25))
def test_pebble_strategies_identical(seed):
    """Naive and residual pebble-game prunings reach the same greatest
    fixpoint — the literal strategy sets, not just the winner."""
    from repro.games.pebble import largest_winning_strategy

    inst = random_instance(seed + 7000)
    a, b = csp_to_homomorphism(inst)
    for k in (1, 2):
        naive = largest_winning_strategy(a, b, k, strategy="naive")
        residual = largest_winning_strategy(a, b, k, strategy="residual")
        interned = largest_winning_strategy(a, b, k, strategy="interned")
        columnar = largest_winning_strategy(a, b, k, strategy="columnar")
        assert naive == residual, f"pebble k={k}, seed {seed}"
        assert residual == interned, f"pebble interned k={k}, seed {seed}"
        assert interned == columnar, f"pebble columnar k={k}, seed {seed}"


@pytest.mark.parametrize("seed", range(20))
def test_mac_strategies_agree_and_solutions_valid(seed):
    """MAC search under all propagation strategies: same verdict, any
    solution found must actually solve the instance, and all strategies
    return the *identical* solution — they explore the same search tree
    (the interned engine enumerates codes in ascending order, which is the
    original values' repr order)."""
    inst = random_instance(seed + 8000)
    norm = inst.normalize()
    solutions = {}
    for strategy in ("naive", "residual", "interned", "columnar"):
        stats = backtracking.solve_with_stats(inst, Inference.MAC, strategy=strategy)
        solutions[strategy] = stats.solution
        if stats.solution is not None:
            assert norm.is_solution(stats.solution), f"{strategy}, seed {seed}"
    solutions["parallel"] = backtracking.solve_with_stats(
        inst, Inference.MAC, workers=2
    ).solution
    assert (
        solutions["naive"]
        == solutions["residual"]
        == solutions["interned"]
        == solutions["columnar"]
        == solutions["parallel"]
    ), f"seed {seed}"


@pytest.mark.parametrize("seed", range(15))
def test_serialization_preserves_all_verdicts(seed):
    from repro.io import instance_from_json, instance_to_json

    inst = random_instance(seed + 5000)
    restored = instance_from_json(instance_to_json(inst))
    assert brute.is_solvable(restored) == brute.is_solvable(inst)
    assert decomposition.count_solutions(restored) == decomposition.count_solutions(inst)
