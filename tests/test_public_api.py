"""API-surface regression: every exported name exists, and every public
callable/class carries a docstring (the documentation deliverable, enforced)."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.relational",
    "repro.csp",
    "repro.csp.solvers",
    "repro.cq",
    "repro.datalog",
    "repro.games",
    "repro.consistency",
    "repro.width",
    "repro.dichotomy",
    "repro.views",
    "repro.generators",
    "repro.io",
    "repro.telemetry",
    "repro.parallel",
    "repro.service",
]

SOLVER_MODULES = [
    "repro.csp.solvers.brute",
    "repro.csp.solvers.backtracking",
    "repro.csp.solvers.backjumping",
    "repro.csp.solvers.join",
    "repro.csp.solvers.consistency",
    "repro.csp.solvers.decomposition",
    "repro.csp.solvers.portfolio",
]


@pytest.mark.parametrize("package", PACKAGES + SOLVER_MODULES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} has no __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES + SOLVER_MODULES)
def test_public_items_documented(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert inspect.getdoc(obj), f"{package}.{name} lacks a docstring"


def test_solver_modules_share_the_decision_api():
    """Every complete solver module exposes solve() and is_solvable()."""
    for name in SOLVER_MODULES:
        module = importlib.import_module(name)
        assert callable(getattr(module, "solve"))
        assert callable(getattr(module, "is_solvable"))


def test_version_is_exposed():
    import repro

    assert repro.__version__
